//! # fg-graph
//!
//! Graph substrate for ForkGraph-rs.
//!
//! This crate provides everything the rest of the workspace needs to represent
//! and prepare graphs:
//!
//! * [`CsrGraph`] — an immutable, compressed-sparse-row graph with both
//!   out-edge and in-edge adjacency (the latter is required by pull-based
//!   baseline engines), optional edge weights, and byte-size accounting used to
//!   size LLC partitions.
//! * [`GraphBuilder`] — mutable edge-list builder with de-duplication and
//!   symmetrisation.
//! * [`gen`] — synthetic graph generators that substitute for the real-world
//!   datasets of the paper (RMAT/power-law for social networks, 2D lattices for
//!   road networks, preferential attachment for citation networks, Erdős–Rényi
//!   for uniform random graphs).
//! * [`io`] — plain edge-list (SNAP), DIMACS `.gr`, and METIS format readers
//!   and writers so that the original datasets can be dropped in.
//! * [`partition`] — graph partitioners: random, contiguous chunking
//!   (Gemini-style), 2D grid (GridGraph-style), and a multilevel edge-cut
//!   partitioner standing in for METIS.
//! * [`partitioned`] — [`partitioned::PartitionedGraph`], the LLC-sized
//!   partitioned representation consumed by the ForkGraph engine.
//! * [`mutation`] — [`VersionedGraph`], the edge-mutation seam: pending
//!   delta logs folded into fresh snapshots (dirty partitions only), with
//!   partition-granular reachability summaries for cache invalidation.
//! * [`epoch`] — [`EpochTable`]/[`SnapshotGuard`], epoch-based snapshot
//!   concurrency: runs pin the current epoch while writers fold the next;
//!   old-epoch storage is reclaimed when its last pin drops.
//! * [`payload`] — per-partition adjacency payloads: raw edge triples or
//!   delta/varint-compressed bytes ([`StorageConfig`] policy), plus the
//!   [`AdjacencyView`] kernels read adjacency through.
//! * [`datasets`] — a registry of scaled-down synthetic stand-ins for the eight
//!   graphs of Table 2 in the paper.
//! * [`stats`] — degree distributions and other summary statistics.

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod epoch;
pub mod gen;
pub mod io;
pub mod mutation;
pub mod partition;
pub mod partitioned;
pub mod payload;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use epoch::{EpochTable, SnapshotGuard};
pub use mutation::{AppliedDeltas, EdgeMutation, MutationError, PreparedFold, VersionedGraph};
pub use payload::{AdjacencyView, CompressedEdges, PartitionPayload, StorageConfig};

/// Vertex identifier. Graphs in this workspace are bounded by `u32::MAX`
/// vertices, which comfortably covers the scaled datasets and matches the
/// 4-byte vertex ids used by Ligra/Gemini/GraphIt.
pub type VertexId = u32;

/// Edge weight. The paper's weighted experiments draw integer weights uniformly
/// from `[1, log |V|)`; integer weights keep priority-queue ordering exact.
pub type Weight = u32;

/// A shortest-path distance (sum of [`Weight`]s along a path).
pub type Dist = u64;

/// Distance value representing "unreached".
pub const INF_DIST: Dist = Dist::MAX;

/// An edge in a plain edge list: `(source, target, weight)`.
pub type Edge = (VertexId, VertexId, Weight);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_aliases_are_consistent() {
        let e: Edge = (0, 1, 3);
        assert_eq!(e.0 as u64 + e.1 as u64 + e.2 as u64, 4);
        // INF_DIST must dominate any realistic path sum, not just any single
        // weight: a worst-case path visits every vertex at maximum weight.
        let inf: Dist = INF_DIST;
        let worst_case_path: Dist = 100_000_000 * (u32::MAX as Dist);
        assert!(inf > worst_case_path, "INF_DIST must dominate 1e8 vertices at max weight");
    }
}
