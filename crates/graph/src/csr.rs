//! Compressed-sparse-row graph storage.
//!
//! [`CsrGraph`] is the immutable graph representation shared by every engine in
//! the workspace. It stores the out-adjacency and (for pull-based engines) the
//! in-adjacency, plus optional per-edge weights. The layout mirrors Ligra's CSR
//! storage that ForkGraph reuses in the paper.

use crate::{Dist, Edge, VertexId, Weight};

/// An immutable directed graph in CSR form.
///
/// Undirected graphs are represented by storing both directions of every edge
/// (see [`crate::GraphBuilder::symmetrize`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets`/`weights` for vertex `v`.
    offsets: Vec<u64>,
    /// Flattened out-neighbour lists.
    targets: Vec<VertexId>,
    /// Optional per-edge weights, parallel to `targets`.
    weights: Option<Vec<Weight>>,
    /// Transpose offsets (in-edges), always present.
    in_offsets: Vec<u64>,
    /// Transpose targets: `in_targets[in_offsets[v]..]` are the *sources* of
    /// edges pointing at `v`.
    in_targets: Vec<VertexId>,
    /// Weights parallel to `in_targets` (present iff `weights` is).
    in_weights: Option<Vec<Weight>>,
}

impl CsrGraph {
    /// Build a graph from a *sorted, deduplicated* edge list.
    ///
    /// Prefer [`crate::GraphBuilder`], which performs the sorting and
    /// deduplication. `num_vertices` must be at least `max(vertex id) + 1`.
    pub fn from_sorted_edges(num_vertices: usize, edges: &[Edge], weighted: bool) -> Self {
        debug_assert!(edges.windows(2).all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)));
        let n = num_vertices;
        let m = edges.len();
        let mut offsets = vec![0u64; n + 1];
        for &(u, _, _) in edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = Vec::with_capacity(m);
        let mut weights = if weighted { Some(Vec::with_capacity(m)) } else { None };
        for &(_, v, w) in edges {
            targets.push(v);
            if let Some(ws) = weights.as_mut() {
                ws.push(w);
            }
        }

        // Build the transpose with counting sort on the target vertex.
        let mut in_offsets = vec![0u64; n + 1];
        for &(_, v, _) in edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor: Vec<u64> = in_offsets[..n].to_vec();
        let mut in_targets = vec![0 as VertexId; m];
        let mut in_weights = if weighted { Some(vec![0 as Weight; m]) } else { None };
        for &(u, v, w) in edges {
            let pos = cursor[v as usize] as usize;
            in_targets[pos] = u;
            if let Some(ws) = in_weights.as_mut() {
                ws[pos] = w;
            }
            cursor[v as usize] += 1;
        }

        CsrGraph { offsets, targets, weights, in_offsets, in_targets, in_weights }
    }

    /// Build a graph from per-segment edge lists without a global sort.
    ///
    /// Each segment is a `(source, target, weight)` list in which every
    /// source vertex's edges appear **contiguously and target-sorted**, and
    /// every vertex's edges live in **exactly one** segment (the contract a
    /// partition-major edge layout satisfies: each partition owns its
    /// vertices' out-edges). Under that contract the result is byte-identical
    /// to [`Self::from_sorted_edges`] over the concatenated, globally sorted
    /// edge list — but assembly is a counting pass plus cursor placement,
    /// `O(n + m)`, with no comparison sort and no per-edge partition lookup.
    /// This is what makes epoch advancement pay only for *dirty* partitions:
    /// clean segments are spliced in as-is.
    pub fn from_edge_segments(num_vertices: usize, segments: &[&[Edge]], weighted: bool) -> Self {
        let n = num_vertices;
        let m: usize = segments.iter().map(|s| s.len()).sum();

        let mut offsets = vec![0u64; n + 1];
        for segment in segments {
            for &(u, _, _) in *segment {
                offsets[u as usize + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![0 as VertexId; m];
        let mut weights = if weighted { Some(vec![0 as Weight; m]) } else { None };
        for segment in segments {
            for &(u, v, w) in *segment {
                let pos = cursor[u as usize] as usize;
                targets[pos] = v;
                if let Some(ws) = weights.as_mut() {
                    ws[pos] = w;
                }
                cursor[u as usize] += 1;
            }
        }
        debug_assert!((0..n).all(|v| {
            let s = offsets[v] as usize;
            let e = offsets[v + 1] as usize;
            targets[s..e].windows(2).all(|w| w[0] < w[1])
        }));

        // Transpose from the assembled out-CSR in ascending source order, so
        // in-adjacency ordering matches `from_sorted_edges` exactly.
        let mut in_offsets = vec![0u64; n + 1];
        for &v in &targets {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_cursor: Vec<u64> = in_offsets[..n].to_vec();
        let mut in_targets = vec![0 as VertexId; m];
        let mut in_weights = if weighted { Some(vec![0 as Weight; m]) } else { None };
        for u in 0..n {
            let s = offsets[u] as usize;
            let e = offsets[u + 1] as usize;
            for i in s..e {
                let v = targets[i] as usize;
                let pos = in_cursor[v] as usize;
                in_targets[pos] = u as VertexId;
                if let (Some(iw), Some(w)) = (in_weights.as_mut(), weights.as_ref()) {
                    iw[pos] = w[i];
                }
                in_cursor[v] += 1;
            }
        }

        CsrGraph { offsets, targets, weights, in_offsets, in_targets, in_weights }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Whether per-edge weights are stored.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as usize
    }

    /// Out-neighbours of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        &self.targets[s..e]
    }

    /// In-neighbours of `v` (sources of edges pointing at `v`).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let s = self.in_offsets[v as usize] as usize;
        let e = self.in_offsets[v as usize + 1] as usize;
        &self.in_targets[s..e]
    }

    /// Weights parallel to [`Self::out_neighbors`]; all-ones slice equivalent if
    /// the graph is unweighted (returns `None` in that case).
    #[inline]
    pub fn out_weights(&self, v: VertexId) -> Option<&[Weight]> {
        self.weights.as_ref().map(|w| {
            let s = self.offsets[v as usize] as usize;
            let e = self.offsets[v as usize + 1] as usize;
            &w[s..e]
        })
    }

    /// Weights parallel to [`Self::in_neighbors`].
    #[inline]
    pub fn in_weights(&self, v: VertexId) -> Option<&[Weight]> {
        self.in_weights.as_ref().map(|w| {
            let s = self.in_offsets[v as usize] as usize;
            let e = self.in_offsets[v as usize + 1] as usize;
            &w[s..e]
        })
    }

    /// Iterate `(target, weight)` pairs of `v`'s out-edges. Unweighted graphs
    /// yield weight 1 for every edge.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        let targets = &self.targets[s..e];
        let weights = self.weights.as_ref().map(|w| &w[s..e]);
        (0..targets.len()).map(move |i| (targets[i], weights.map_or(1, |w| w[i])))
    }

    /// Iterate `(source, weight)` pairs of `v`'s in-edges.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let s = self.in_offsets[v as usize] as usize;
        let e = self.in_offsets[v as usize + 1] as usize;
        let sources = &self.in_targets[s..e];
        let weights = self.in_weights.as_ref().map(|w| &w[s..e]);
        (0..sources.len()).map(move |i| (sources[i], weights.map_or(1, |w| w[i])))
    }

    /// Byte offset of vertex `v`'s adjacency within the CSR target array.
    /// Used by the cache simulator to derive synthetic addresses.
    #[inline]
    pub fn adjacency_offset(&self, v: VertexId) -> u64 {
        self.offsets[v as usize]
    }

    /// Iterate all edges as `(u, v, w)` triples.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |u| self.out_edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// Approximate in-memory size of the CSR payload in bytes (offsets +
    /// adjacency + weights, out-direction only — the quantity the paper divides
    /// by the LLC size to pick `|P|`).
    pub fn size_bytes(&self) -> usize {
        let mut bytes = self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<VertexId>();
        if let Some(w) = &self.weights {
            bytes += w.len() * std::mem::size_of::<Weight>();
        }
        bytes
    }

    /// Total size including the transpose, i.e. what is actually resident.
    pub fn total_size_bytes(&self) -> usize {
        self.size_bytes()
            + self.in_offsets.len() * std::mem::size_of::<u64>()
            + self.in_targets.len() * std::mem::size_of::<VertexId>()
            + self.in_weights.as_ref().map_or(0, |w| w.len() * std::mem::size_of::<Weight>())
    }

    /// Return a copy of this graph with uniformly random integer weights in
    /// `[1, max_weight]`, seeded deterministically from `seed`.
    pub fn with_random_weights(&self, max_weight: Weight, seed: u64) -> CsrGraph {
        let mut edges: Vec<Edge> = Vec::with_capacity(self.num_edges());
        // Weight must be consistent for both directions of a symmetrised edge;
        // derive it from the unordered pair so (u,v) and (v,u) agree.
        for u in 0..self.num_vertices() as VertexId {
            for (v, _) in self.out_edges(u) {
                let (a, b) = if u <= v { (u, v) } else { (v, u) };
                let h = pair_hash(a, b, seed);
                let w = 1 + (h % max_weight.max(1) as u64) as Weight;
                edges.push((u, v, w));
            }
        }
        CsrGraph::from_sorted_edges(self.num_vertices(), &edges, true)
    }

    /// Convenience wrapper around [`Self::with_random_weights`] with a fixed
    /// seed, matching the paper's `[1, log |V|)` weight selection when passed
    /// `max_weight = log2(|V|)`.
    pub fn into_weighted(self, max_weight: Weight) -> CsrGraph {
        self.with_random_weights(max_weight, 0x5eed_f0cd)
    }

    /// An upper bound on any finite shortest-path distance in this graph
    /// (`|V| * max_weight`), useful for Δ-stepping bucket sizing.
    pub fn max_distance_bound(&self) -> Dist {
        let max_w =
            self.weights.as_ref().and_then(|w| w.iter().max().copied()).unwrap_or(1) as Dist;
        self.num_vertices() as Dist * max_w.max(1)
    }
}

/// Deterministic hash of an unordered vertex pair and a seed; used to assign
/// symmetric random edge weights.
fn pair_hash(a: VertexId, b: VertexId, seed: u64) -> u64 {
    let mut x = (a as u64) << 32 | b as u64;
    x ^= seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn adjacency_contents() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        let edges: Vec<_> = g.out_edges(0).collect();
        assert_eq!(edges, vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn edges_iterator_round_trip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(0, 1, 1)));
        assert!(edges.contains(&(2, 3, 1)));
    }

    #[test]
    fn unweighted_edges_report_weight_one() {
        let mut b = GraphBuilder::new(2);
        b.add_unweighted_edge(0, 1);
        let g = b.build();
        assert!(!g.is_weighted());
        assert_eq!(g.out_edges(0).next(), Some((1, 1)));
    }

    #[test]
    fn random_weights_are_in_range_and_symmetric() {
        let mut b = GraphBuilder::new(5);
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    b.add_unweighted_edge(u, v);
                }
            }
        }
        let g = b.build().with_random_weights(7, 123);
        assert!(g.is_weighted());
        for (u, v, w) in g.edges() {
            assert!((1..=7).contains(&w));
            // Symmetric pair must carry the same weight.
            let back = g.out_edges(v).find(|&(t, _)| t == u).unwrap();
            assert_eq!(back.1, w, "weight mismatch for ({u},{v})");
        }
    }

    #[test]
    fn size_bytes_scales_with_edges() {
        let small = diamond();
        let mut b = GraphBuilder::new(100);
        for i in 0..99u32 {
            b.add_edge(i, i + 1, 1);
        }
        let big = b.build();
        assert!(big.size_bytes() > small.size_bytes());
        assert!(big.total_size_bytes() >= big.size_bytes());
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_vertices_have_empty_adjacency() {
        let g = GraphBuilder::new(10).build();
        for v in 0..10 {
            assert_eq!(g.out_degree(v), 0);
            assert_eq!(g.in_degree(v), 0);
            assert!(g.out_neighbors(v).is_empty());
        }
    }

    /// `from_edge_segments` must reproduce `from_sorted_edges` exactly
    /// (CsrGraph derives PartialEq, so this checks every array including the
    /// transpose) when fed a partition-major segmentation of the same edges.
    #[test]
    fn segment_assembly_matches_sorted_construction() {
        let edges: Vec<crate::Edge> =
            vec![(0, 2, 5), (0, 3, 1), (1, 0, 2), (2, 1, 7), (2, 3, 3), (4, 0, 9), (4, 2, 4)];
        let sorted = CsrGraph::from_sorted_edges(6, &edges, true);
        // Partition {0,1} / {2} / {3,4,5}: vertex-contiguous segments in an
        // order that is NOT globally source-sorted when concatenated.
        let seg_a: Vec<crate::Edge> = vec![(2, 1, 7), (2, 3, 3)];
        let seg_b: Vec<crate::Edge> = vec![(4, 0, 9), (4, 2, 4)];
        let seg_c: Vec<crate::Edge> = vec![(0, 2, 5), (0, 3, 1), (1, 0, 2)];
        let assembled = CsrGraph::from_edge_segments(6, &[&seg_a, &seg_b, &seg_c], true);
        assert_eq!(assembled, sorted);

        let unweighted = CsrGraph::from_sorted_edges(6, &edges, false);
        let assembled = CsrGraph::from_edge_segments(6, &[&seg_c, &seg_a, &seg_b], false);
        assert_eq!(assembled, unweighted);

        let empty = CsrGraph::from_edge_segments(3, &[], true);
        assert_eq!(empty, CsrGraph::from_sorted_edges(3, &[], true));
    }

    #[test]
    fn max_distance_bound_upper_bounds_diameter() {
        let g = diamond().with_random_weights(3, 7);
        assert!(g.max_distance_bound() >= 3 * 2); // longest path has two edges
    }
}
