//! Versioned graph storage with edge mutations.
//!
//! The engine and everything above it consume an immutable
//! [`Arc<PartitionedGraph>`]; this module is the seam that lets the graph
//! *change* without any in-flight run observing a half-applied batch.
//!
//! [`VersionedGraph`] pairs the current snapshot with a pending delta log of
//! [`EdgeMutation`]s. Writers append to the log at any time; readers pin the
//! current epoch via [`VersionedGraph::pin`] and keep that snapshot for the
//! length of one run. Applying a batch is split into two halves so folds can
//! overlap in-flight reads:
//!
//! * [`VersionedGraph::prepare`] copies a prefix of the log (without draining
//!   it, so [`pending_affects`](VersionedGraph::pending_affects) keeps
//!   forcing cache misses for affected sources while the fold is in flight)
//!   and — entirely outside the locks — folds it into the next snapshot,
//!   re-materializing **only dirty partitions**: every clean partition's
//!   [`Arc<PartitionStore>`](crate::partitioned::PartitionStore) is shared
//!   with the previous epoch, and the monolithic CSR is re-assembled from the
//!   store segments without a global sort. The
//!   [`PartitionPlan`](crate::partition::PartitionPlan) is reused
//!   (vertex count is immutable, so the old assignment stays valid).
//! * [`VersionedGraph::publish`] atomically swaps the snapshot, drains the
//!   consumed prefix, bumps the version, and advances the
//!   [`EpochTable`] — all under one short lock section.
//!
//! [`VersionedGraph::advance`] runs both halves back-to-back;
//! [`VersionedGraph::quiesce`] is the same thing under its historical name.
//! The returned [`AppliedDeltas`] tells the caller everything it needs for
//! cache invalidation and incremental restart:
//!
//! * whether the batch was **monotone** — every effective change is a new
//!   edge or a weight decrease, so monotone-relaxation kernels (SSSP/BFS)
//!   can re-converge from the delta frontier instead of from scratch;
//! * the effective `seed_edges` (final weights) for that restart;
//! * a partition-granular [`PartitionReachability`] over-approximation of
//!   which cached sources the batch can possibly affect.
//!
//! Reachability is computed on the partition quotient graph (partition `p`
//! has an arc to `q` iff some edge crosses from `p` to `q`), closed
//! reflexively and transitively with bitset rows. A mutation on edge
//! `(u, v)` can only change the result of a source `s` if `s` reaches `u`;
//! `reaches(part(s), part(u))` over the *union* of old and new quotient
//! edges over-approximates that for inserts and deletes alike.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

use crate::epoch::{EpochTable, SnapshotGuard};
use crate::partition::PartitionId;
use crate::partitioned::{PartitionStore, PartitionedGraph};
use crate::{Edge, VertexId, Weight};

/// A single logged edge mutation.
///
/// Semantics at merge time (applied in log order):
/// * `Insert` of an existing edge overwrites its weight.
/// * `Delete` of a missing edge is a no-op.
/// * `UpdateWeight` of a missing edge inserts it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeMutation {
    /// Add edge `u → v` with weight `w` (or overwrite an existing weight).
    Insert {
        /// Source endpoint.
        u: VertexId,
        /// Target endpoint.
        v: VertexId,
        /// Edge weight.
        w: Weight,
    },
    /// Remove edge `u → v` if present.
    Delete {
        /// Source endpoint.
        u: VertexId,
        /// Target endpoint.
        v: VertexId,
    },
    /// Set the weight of `u → v` to `w` (inserting if absent).
    UpdateWeight {
        /// Source endpoint.
        u: VertexId,
        /// Target endpoint.
        v: VertexId,
        /// New edge weight.
        w: Weight,
    },
}

impl EdgeMutation {
    /// The `(u, v)` endpoints the mutation touches.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            EdgeMutation::Insert { u, v, .. }
            | EdgeMutation::Delete { u, v }
            | EdgeMutation::UpdateWeight { u, v, .. } => (u, v),
        }
    }
}

/// Why a mutation was rejected at log time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationError {
    /// An endpoint is outside the (immutable) vertex range.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// Self-loops are never stored (the builder drops them too).
    SelfLoop {
        /// The vertex looping onto itself.
        vertex: VertexId,
    },
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MutationError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range for graph with {num_vertices} vertices")
            }
            MutationError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} rejected")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// Reflexive-transitive closure of the partition quotient graph, stored as
/// one bitset row per source partition.
#[derive(Clone, Debug)]
pub struct PartitionReachability {
    num_partitions: usize,
    words_per_row: usize,
    rows: Vec<u64>,
}

impl PartitionReachability {
    /// Closure over the quotient adjacency `adj` (same row layout).
    fn close(num_partitions: usize, adj: &[u64]) -> Self {
        let words = num_partitions.div_ceil(64).max(1);
        let mut rows = adj.to_vec();
        // Reflexive.
        for p in 0..num_partitions {
            rows[p * words + p / 64] |= 1u64 << (p % 64);
        }
        // Warshall with bitset rows: if i reaches k, i reaches all of row k.
        for k in 0..num_partitions {
            for i in 0..num_partitions {
                if rows[i * words + k / 64] >> (k % 64) & 1 == 1 {
                    for w in 0..words {
                        let bits = rows[k * words + w];
                        rows[i * words + w] |= bits;
                    }
                }
            }
        }
        PartitionReachability { num_partitions, words_per_row: words, rows }
    }

    /// Number of partitions this closure covers.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Can partition `from` reach partition `to` (reflexively)?
    pub fn reaches(&self, from: PartitionId, to: PartitionId) -> bool {
        let (from, to) = (from as usize, to as usize);
        debug_assert!(from < self.num_partitions && to < self.num_partitions);
        self.rows[from * self.words_per_row + to / 64] >> (to % 64) & 1 == 1
    }

    /// Partitions that can reach *any* partition in `dirty` — i.e. the set
    /// of source partitions whose cached results a batch touching `dirty`
    /// could possibly change. Returned as a dense membership vector.
    pub fn partitions_reaching(&self, dirty: &[PartitionId]) -> Vec<bool> {
        let words = self.words_per_row;
        let mut mask = vec![0u64; words];
        for &d in dirty {
            let d = d as usize;
            debug_assert!(d < self.num_partitions);
            mask[d / 64] |= 1u64 << (d % 64);
        }
        (0..self.num_partitions)
            .map(|p| (0..words).any(|w| self.rows[p * words + w] & mask[w] != 0))
            .collect()
    }

    /// Does `from`'s row intersect the raw bitset `mask` (same word layout)?
    fn row_intersects(&self, from: PartitionId, mask: &[u64]) -> bool {
        let words = self.words_per_row;
        let base = from as usize * words;
        (0..words).any(|w| self.rows[base + w] & mask[w] != 0)
    }
}

/// Quotient adjacency of `graph` under its own partition plan: bit `q` of
/// row `p` is set iff some edge goes from partition `p` to partition `q`.
/// Concatenates the per-partition rows cached on the stores — `O(k · words)`,
/// not an `O(m)` edge scan.
fn quotient_adjacency(pg: &PartitionedGraph) -> Vec<u64> {
    (0..pg.num_partitions())
        .flat_map(|p| pg.store(p as PartitionId).quotient_row.iter().copied())
        .collect()
}

/// One applied mutation batch: the new snapshot plus everything the caller
/// needs for invalidation and incremental restart.
pub struct AppliedDeltas {
    /// The post-merge snapshot (same plan, new CSR).
    pub graph: Arc<PartitionedGraph>,
    /// Version of the new snapshot.
    pub version: u64,
    /// How many logged mutations this batch merged.
    pub mutations: usize,
    /// `true` iff every *effective* change was an edge insertion or a weight
    /// decrease — the precondition for delta-frontier restart of monotone
    /// relaxation kernels. Any deletion or weight increase clears it.
    pub monotone: bool,
    /// Effective inserted/decreased edges with their final weights: the
    /// delta frontier seeds for an incremental re-run. Only meaningful when
    /// [`monotone`](Self::monotone); populated regardless.
    pub seed_edges: Vec<Edge>,
    /// Partitions containing the source endpoint of an effective change.
    pub dirty_partitions: Vec<PartitionId>,
    /// Reachability closure over the *union* of old and new quotient edges —
    /// safe for deciding which cached sources the batch might affect.
    pub reach: PartitionReachability,
    /// Partitions whose stores were rebuilt for this batch (== the dirty
    /// count).
    pub partitions_rematerialized: usize,
    /// Partitions whose stores are `Arc`-shared with the previous epoch.
    pub partitions_shared: usize,
}

/// A mutation fold computed off the locks by [`VersionedGraph::prepare`],
/// awaiting [`VersionedGraph::publish`]. Holding one does not block readers
/// or writers; the consumed log prefix stays pending (and keeps poisoning
/// the cache-freshness check) until publish.
pub struct PreparedFold {
    /// Version the fold was computed against; publish asserts it still holds.
    base_version: u64,
    /// Length of the log prefix this fold consumed.
    consumed: usize,
    monotone: bool,
    seed_edges: Vec<Edge>,
    dirty_partitions: Vec<PartitionId>,
    graph: Arc<PartitionedGraph>,
    new_adj: Vec<u64>,
    reach: PartitionReachability,
    partitions_rematerialized: usize,
    partitions_shared: usize,
}

impl PreparedFold {
    /// Mutations this fold will drain at publish.
    pub fn mutations(&self) -> usize {
        self.consumed
    }

    /// Dirty partitions re-materialized by this fold.
    pub fn dirty_partitions(&self) -> &[PartitionId] {
        &self.dirty_partitions
    }

    /// Version the fold was computed against (publish makes it
    /// `base_version() + 1`).
    pub fn base_version(&self) -> u64 {
        self.base_version
    }
}

struct VgInner {
    current: Arc<PartitionedGraph>,
    version: u64,
    pending: Vec<EdgeMutation>,
    /// Quotient adjacency of `current` (cached so per-mutation reachability
    /// updates don't rescan the edge list).
    adj: Vec<u64>,
    /// Closure over `adj` ∪ pending endpoints' quotient arcs — the
    /// over-approximation used to answer "could a pending mutation affect
    /// source s?" before the batch is applied.
    pending_reach: Option<PartitionReachability>,
    /// Bitset of partitions containing a pending mutation's source endpoint.
    pending_touched: Vec<u64>,
}

impl VgInner {
    fn words(&self) -> usize {
        self.current.num_partitions().div_ceil(64).max(1)
    }

    fn refresh_pending_reach(&mut self) {
        let parts = self.current.num_partitions();
        let words = self.words();
        if self.pending.is_empty() {
            self.pending_reach = None;
            self.pending_touched = vec![0u64; words];
            return;
        }
        let mut adj = self.adj.clone();
        let mut touched = vec![0u64; words];
        for m in &self.pending {
            let (u, v) = m.endpoints();
            let pu = self.current.partition_of(u) as usize;
            let pv = self.current.partition_of(v) as usize;
            adj[pu * words + pv / 64] |= 1u64 << (pv % 64);
            touched[pu / 64] |= 1u64 << (pu % 64);
        }
        self.pending_reach = Some(PartitionReachability::close(parts, &adj));
        self.pending_touched = touched;
    }
}

/// The versioned storage seam: an atomically swappable graph snapshot plus a
/// pending mutation log, merged at quiesce points.
///
/// Thread-safe; writers and readers may call concurrently. Only one caller
/// should drive [`quiesce`](Self::quiesce) (typically the batch loop that
/// owns the quiesce points), but concurrent quiesce calls are merely
/// serialized, never incorrect.
pub struct VersionedGraph {
    inner: Mutex<VgInner>,
    applied: Condvar,
    /// Serializes the (deliberately lock-free-in-the-middle) fold in
    /// [`advance`](Self::advance) / [`quiesce`](Self::quiesce).
    quiesce_gate: Mutex<()>,
    /// Snapshot epochs; epoch numbers coincide with graph versions.
    epochs: EpochTable,
}

impl VersionedGraph {
    /// Wrap `graph` as version 0 with an empty mutation log.
    pub fn new(graph: Arc<PartitionedGraph>) -> Self {
        let adj = quotient_adjacency(&graph);
        let words = graph.num_partitions().div_ceil(64).max(1);
        let epochs = EpochTable::new(Arc::clone(&graph));
        VersionedGraph {
            inner: Mutex::new(VgInner {
                current: graph,
                version: 0,
                pending: Vec::new(),
                adj,
                pending_reach: None,
                pending_touched: vec![0u64; words],
            }),
            applied: Condvar::new(),
            quiesce_gate: Mutex::new(()),
            epochs,
        }
    }

    /// The current snapshot. Runs resolved against it stay valid for their
    /// lifetime; publish swaps the pointer, it never mutates the pointee.
    pub fn current(&self) -> Arc<PartitionedGraph> {
        Arc::clone(&self.inner.lock().unwrap().current)
    }

    /// Pin the current epoch's snapshot for one engine run. The guard's
    /// epoch number equals the graph version it snapshots; old-epoch storage
    /// is reclaimed when the last guard on it drops.
    pub fn pin(&self) -> SnapshotGuard {
        self.epochs.pin()
    }

    /// The epoch table (for trace attachment and epoch statistics).
    pub fn epochs(&self) -> &EpochTable {
        &self.epochs
    }

    /// Version of the current snapshot (0 at construction, +1 per applied
    /// batch).
    pub fn version(&self) -> u64 {
        self.inner.lock().unwrap().version
    }

    /// Number of logged-but-unapplied mutations.
    pub fn pending_mutations(&self) -> usize {
        self.inner.lock().unwrap().pending.len()
    }

    /// Is there anything waiting for the next quiesce point?
    pub fn has_pending(&self) -> bool {
        !self.inner.lock().unwrap().pending.is_empty()
    }

    /// Could *any* pending mutation affect results computed from `source`?
    /// Over-approximate (partition-granular, union reachability); `false`
    /// means a cached result for `source` is definitely still fresh.
    pub fn pending_affects(&self, source: VertexId) -> bool {
        let inner = self.inner.lock().unwrap();
        match &inner.pending_reach {
            None => false,
            Some(reach) => {
                let ps = inner.current.partition_of(source);
                reach.row_intersects(ps, &inner.pending_touched)
            }
        }
    }

    /// Log `insert_edge(u, v, w)`. Returns the version that will first
    /// contain it (current version + 1).
    pub fn insert_edge(&self, u: VertexId, v: VertexId, w: Weight) -> Result<u64, MutationError> {
        self.log(EdgeMutation::Insert { u, v, w })
    }

    /// Log `delete_edge(u, v)`. Returns the version that will first reflect
    /// it.
    pub fn delete_edge(&self, u: VertexId, v: VertexId) -> Result<u64, MutationError> {
        self.log(EdgeMutation::Delete { u, v })
    }

    /// Log `update_weight(u, v, w)`. Returns the version that will first
    /// reflect it.
    pub fn update_weight(&self, u: VertexId, v: VertexId, w: Weight) -> Result<u64, MutationError> {
        self.log(EdgeMutation::UpdateWeight { u, v, w })
    }

    /// Validate and append one mutation to the pending log.
    pub fn log(&self, mutation: EdgeMutation) -> Result<u64, MutationError> {
        let mut inner = self.inner.lock().unwrap();
        let n = inner.current.graph().num_vertices();
        let (u, v) = mutation.endpoints();
        for endpoint in [u, v] {
            if endpoint as usize >= n {
                return Err(MutationError::VertexOutOfRange { vertex: endpoint, num_vertices: n });
            }
        }
        if u == v {
            return Err(MutationError::SelfLoop { vertex: u });
        }
        inner.pending.push(mutation);
        inner.refresh_pending_reach();
        Ok(inner.version + 1)
    }

    /// Block until the snapshot version reaches `version` (i.e. every
    /// mutation logged before the corresponding call has been applied).
    pub fn wait_for_version(&self, version: u64) {
        let mut inner = self.inner.lock().unwrap();
        while inner.version < version {
            inner = self.applied.wait(inner).unwrap();
        }
    }

    /// Fold a prefix of the pending log into the next snapshot **without
    /// draining the log or swapping anything**. Returns `None` when the log
    /// is empty. The fold runs entirely outside the locks, so readers keep
    /// pinning and querying the current epoch while it materializes — and
    /// because the prefix stays pending,
    /// [`pending_affects`](Self::pending_affects) keeps steering affected
    /// sources away from the cache until [`publish`](Self::publish) lands
    /// the new version.
    ///
    /// Only dirty partitions (those containing the source endpoint of an
    /// effective change) are re-materialized; every clean partition's store
    /// is `Arc`-shared with the current snapshot. A net-no-op prefix reuses
    /// the whole snapshot `Arc`.
    ///
    /// Contract: a single fold driver. Two overlapping prepares would both
    /// fold from the same base version, and the second publish panics on its
    /// stale base. Use [`advance`](Self::advance) when serialization via the
    /// internal gate is wanted.
    pub fn prepare(&self) -> Option<PreparedFold> {
        let (old, batch, base_version) = {
            let inner = self.inner.lock().unwrap();
            if inner.pending.is_empty() {
                return None;
            }
            (Arc::clone(&inner.current), inner.pending.clone(), inner.version)
        };

        // Replay the prefix to a net effect per touched endpoint pair.
        let csr = old.graph();
        let before_weight = |u: VertexId, v: VertexId| -> Option<Weight> {
            csr.out_edges(u).find(|&(t, _)| t == v).map(|(_, w)| w)
        };
        // (pair) -> (weight before the batch, final weight; None = absent).
        let mut touched: BTreeMap<(VertexId, VertexId), (Option<Weight>, Option<Weight>)> =
            BTreeMap::new();
        for m in &batch {
            let (u, v) = m.endpoints();
            let entry = touched.entry((u, v)).or_insert_with(|| {
                let b = before_weight(u, v);
                (b, b)
            });
            entry.1 = match *m {
                EdgeMutation::Insert { w, .. } | EdgeMutation::UpdateWeight { w, .. } => Some(w),
                EdgeMutation::Delete { .. } => None,
            };
        }

        let mut monotone = true;
        let mut seed_edges = Vec::new();
        let mut dirty = vec![false; old.num_partitions()];
        // Effective changes grouped by the partition owning the source
        // endpoint (the partition whose edge segment they land in).
        type PartitionChanges = Vec<((VertexId, VertexId), Option<Weight>)>;
        let mut changes: BTreeMap<PartitionId, PartitionChanges> = BTreeMap::new();
        for (&(u, v), &(before, after)) in &touched {
            match (before, after) {
                (None, None) => continue,                                  // net no-op
                (Some(b), Some(a)) if a == b => continue,                  // net no-op
                (None, Some(a)) => seed_edges.push((u, v, a)),             // new edge
                (Some(b), Some(a)) if a < b => seed_edges.push((u, v, a)), // decrease
                _ => monotone = false, // deletion or weight increase
            }
            let p = old.partition_of(u);
            dirty[p as usize] = true;
            changes.entry(p).or_default().push(((u, v), after));
        }
        let dirty_partitions: Vec<PartitionId> =
            (0..old.num_partitions() as PartitionId).filter(|&p| dirty[p as usize]).collect();

        let parts = old.num_partitions();
        let graph = if dirty_partitions.is_empty() {
            // Net no-op: the snapshot is bit-identical, share it outright
            // (the version still bumps at publish so waiters unblock).
            Arc::clone(&old)
        } else {
            let weighted = csr.is_weighted();
            let stores: Vec<Arc<PartitionStore>> = (0..parts as PartitionId)
                .map(|p| {
                    let old_store = old.store(p);
                    match changes.get(&p) {
                        None => Arc::clone(old_store),
                        Some(edits) => {
                            // `edge_segment` decodes compressed payloads
                            // transiently; the rebuild below re-applies the
                            // snapshot's storage policy, so a dirty
                            // compressed partition is re-encoded and a clean
                            // one stays Arc-shared untouched.
                            let mut seg: BTreeMap<(VertexId, VertexId), Weight> = old_store
                                .edge_segment()
                                .iter()
                                .map(|&(u, v, w)| ((u, v), w))
                                .collect();
                            for &(pair, after) in edits {
                                match after {
                                    Some(w) => {
                                        seg.insert(pair, w);
                                    }
                                    None => {
                                        seg.remove(&pair);
                                    }
                                }
                            }
                            let edges: Vec<Edge> =
                                seg.into_iter().map(|((u, v), w)| (u, v, w)).collect();
                            Arc::new(PartitionStore::build(
                                p,
                                old_store.info.vertices.clone(),
                                edges,
                                weighted,
                                old.plan(),
                                old.config().storage,
                            ))
                        }
                    }
                })
                .collect();
            Arc::new(PartitionedGraph::from_stores(
                csr.num_vertices(),
                weighted,
                old.plan().clone(),
                *old.config(),
                stores,
            ))
        };
        let new_adj = quotient_adjacency(&graph);

        // Union closure: old ∪ new quotient arcs cover both "could reach the
        // deleted edge" and "can reach the inserted edge".
        let old_adj = quotient_adjacency(&old);
        let union: Vec<u64> = old_adj.iter().zip(&new_adj).map(|(a, b)| a | b).collect();
        let reach = PartitionReachability::close(parts, &union);

        let rematerialized = dirty_partitions.len();
        Some(PreparedFold {
            base_version,
            consumed: batch.len(),
            monotone,
            seed_edges,
            dirty_partitions,
            graph,
            new_adj,
            reach,
            partitions_rematerialized: rematerialized,
            partitions_shared: parts - rematerialized,
        })
    }

    /// Swap in a [`prepare`](Self::prepare)d fold: drain the consumed log
    /// prefix, publish the new snapshot and version, advance the epoch
    /// table, and wake [`wait_for_version`](Self::wait_for_version) waiters.
    /// One short lock section; never materializes anything.
    ///
    /// Panics if the snapshot version moved since the fold was prepared
    /// (two concurrent fold drivers — see [`prepare`](Self::prepare)).
    pub fn publish(&self, fold: PreparedFold) -> AppliedDeltas {
        let PreparedFold {
            base_version,
            consumed,
            monotone,
            seed_edges,
            dirty_partitions,
            graph,
            new_adj,
            reach,
            partitions_rematerialized,
            partitions_shared,
        } = fold;
        let version = {
            let mut inner = self.inner.lock().unwrap();
            assert_eq!(
                inner.version, base_version,
                "PreparedFold published against a stale base (concurrent fold drivers?)"
            );
            inner.pending.drain(..consumed);
            inner.current = Arc::clone(&graph);
            inner.version += 1;
            inner.adj = new_adj;
            inner.refresh_pending_reach();
            self.epochs.advance(
                Arc::clone(&graph),
                inner.version,
                partitions_rematerialized,
                partitions_shared,
            );
            self.applied.notify_all();
            inner.version
        };

        AppliedDeltas {
            graph,
            version,
            mutations: consumed,
            monotone,
            seed_edges,
            dirty_partitions,
            reach,
            partitions_rematerialized,
            partitions_shared,
        }
    }

    /// Prepare and publish in one call, serialized by the internal gate.
    /// Returns `None` when the log is empty.
    pub fn advance(&self) -> Option<AppliedDeltas> {
        let _gate = self.quiesce_gate.lock().unwrap();
        let fold = self.prepare()?;
        Some(self.publish(fold))
    }

    /// Historical name for [`advance`](Self::advance), kept for callers that
    /// still think in stop-the-world terms. No in-flight run ever observes a
    /// half-applied batch either way: runs hold their pinned epoch's `Arc`
    /// and simply see the pre-batch graph.
    pub fn quiesce(&self) -> Option<AppliedDeltas> {
        self.advance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionConfig, PartitionMethod, PartitionPlan};
    use crate::CsrGraph;

    /// Fixed even chunking: vertex `v` lands in partition `v / (n / parts)`,
    /// so tests can reason about the quotient graph exactly.
    fn pg(edges: &[Edge], n: usize, parts: usize) -> Arc<PartitionedGraph> {
        let mut sorted = edges.to_vec();
        sorted.sort_unstable();
        let csr = Arc::new(CsrGraph::from_sorted_edges(n, &sorted, true));
        let chunk = n / parts;
        let plan = PartitionPlan {
            assignment: (0..n).map(|v| ((v / chunk).min(parts - 1)) as PartitionId).collect(),
            num_partitions: parts,
        };
        Arc::new(PartitionedGraph::from_plan(
            csr,
            plan,
            PartitionConfig::with_partitions(PartitionMethod::Chunked, parts),
        ))
    }

    #[test]
    fn insert_bumps_version_and_adds_edge() {
        let vg = VersionedGraph::new(pg(&[(0, 1, 5)], 8, 2));
        assert_eq!(vg.version(), 0);
        assert!(!vg.has_pending());
        let target = vg.insert_edge(1, 2, 7).unwrap();
        assert_eq!(target, 1);
        assert!(vg.has_pending());
        let applied = vg.quiesce().expect("one pending mutation");
        assert_eq!(applied.version, 1);
        assert_eq!(vg.version(), 1);
        assert!(applied.monotone);
        assert_eq!(applied.seed_edges, vec![(1, 2, 7)]);
        assert_eq!(applied.mutations, 1);
        let g = vg.current();
        assert_eq!(g.graph().num_edges(), 2);
        assert_eq!(g.graph().out_edges(1).collect::<Vec<_>>(), vec![(2, 7)]);
        assert!(!vg.has_pending());
        assert!(vg.quiesce().is_none());
    }

    #[test]
    fn merge_semantics_follow_log_order() {
        let vg = VersionedGraph::new(pg(&[(0, 1, 5)], 8, 2));
        vg.insert_edge(0, 1, 3).unwrap(); // overwrite = decrease
        vg.delete_edge(2, 3).unwrap(); // delete missing = no-op
        vg.update_weight(4, 5, 9).unwrap(); // update missing = insert
        let applied = vg.quiesce().unwrap();
        assert!(applied.monotone, "no effective delete/increase in this batch");
        let mut seeds = applied.seed_edges.clone();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![(0, 1, 3), (4, 5, 9)]);
        let g = vg.current();
        assert_eq!(g.graph().out_edges(0).collect::<Vec<_>>(), vec![(1, 3)]);
        assert_eq!(g.graph().out_edges(4).collect::<Vec<_>>(), vec![(5, 9)]);
        assert_eq!(g.graph().out_neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn delete_and_increase_clear_monotone() {
        let base = pg(&[(0, 1, 5), (1, 2, 2)], 8, 2);
        let vg = VersionedGraph::new(Arc::clone(&base));
        vg.delete_edge(0, 1).unwrap();
        let applied = vg.quiesce().unwrap();
        assert!(!applied.monotone);
        assert_eq!(vg.current().graph().num_edges(), 1);

        let vg = VersionedGraph::new(base);
        vg.update_weight(1, 2, 10).unwrap(); // increase
        assert!(!vg.quiesce().unwrap().monotone);
    }

    #[test]
    fn net_noop_batch_is_monotone_with_no_seeds() {
        let vg = VersionedGraph::new(pg(&[(0, 1, 5)], 8, 2));
        vg.delete_edge(0, 1).unwrap();
        vg.insert_edge(0, 1, 5).unwrap(); // restores the original weight
        let applied = vg.quiesce().unwrap();
        assert!(applied.monotone);
        assert!(applied.seed_edges.is_empty());
        assert!(applied.dirty_partitions.is_empty());
        assert_eq!(applied.mutations, 2);
    }

    #[test]
    fn mutation_validation() {
        let vg = VersionedGraph::new(pg(&[(0, 1, 5)], 4, 2));
        assert_eq!(
            vg.insert_edge(0, 9, 1),
            Err(MutationError::VertexOutOfRange { vertex: 9, num_vertices: 4 })
        );
        assert_eq!(vg.insert_edge(2, 2, 1), Err(MutationError::SelfLoop { vertex: 2 }));
        assert!(!vg.has_pending());
    }

    #[test]
    fn plan_is_preserved_across_quiesce() {
        let base = pg(&[(0, 1, 1), (4, 5, 1)], 8, 4);
        let plan_before = base.plan().clone();
        let vg = VersionedGraph::new(base);
        vg.insert_edge(1, 4, 2).unwrap();
        let applied = vg.quiesce().unwrap();
        assert_eq!(applied.graph.plan(), &plan_before);
        assert_eq!(applied.graph.num_partitions(), 4);
    }

    #[test]
    fn reachability_over_approximates_affected_sources() {
        // Chunked over 8 vertices / 4 partitions: {0,1} {2,3} {4,5} {6,7}.
        // Chain 0→2→4: partition 0 reaches 1 reaches 2; partition 3 isolated.
        let base = pg(&[(0, 2, 1), (2, 4, 1)], 8, 4);
        let vg = VersionedGraph::new(base);
        vg.insert_edge(4, 5, 1).unwrap(); // mutation inside partition 2

        // Pending check: sources in partitions 0, 1, 2 can reach partition 2;
        // partition 3 cannot.
        assert!(vg.pending_affects(0));
        assert!(vg.pending_affects(2));
        assert!(vg.pending_affects(4), "same-partition sources are always affected");
        assert!(!vg.pending_affects(6));

        let applied = vg.quiesce().unwrap();
        assert_eq!(applied.dirty_partitions, vec![2]);
        let affected = applied.reach.partitions_reaching(&applied.dirty_partitions);
        assert_eq!(affected, vec![true, true, true, false]);
        assert!(!vg.pending_affects(0), "log drained, nothing pending");
    }

    #[test]
    fn union_reachability_covers_deleted_paths() {
        // 0→2 is the only inter-partition arc; delete it. Old-graph
        // reachability must still say partition 0 is affected.
        let vg = VersionedGraph::new(pg(&[(0, 2, 1)], 4, 2));
        vg.delete_edge(0, 2).unwrap();
        assert!(vg.pending_affects(0));
        let applied = vg.quiesce().unwrap();
        assert!(!applied.monotone);
        let affected = applied.reach.partitions_reaching(&applied.dirty_partitions);
        assert!(affected[0], "source partition of the deleted edge is affected");
    }

    /// The acceptance-criterion Arc-identity test: a localized mutation
    /// re-materializes exactly its dirty partition's store; every clean
    /// partition is shared (`Arc::ptr_eq`) with the previous epoch.
    #[test]
    fn localized_fold_shares_clean_partition_stores() {
        // Chunked over 8 vertices / 4 partitions: {0,1} {2,3} {4,5} {6,7}.
        let base = pg(&[(0, 1, 1), (2, 3, 1), (4, 5, 1), (6, 7, 1)], 8, 4);
        let vg = VersionedGraph::new(Arc::clone(&base));
        vg.insert_edge(2, 5, 4).unwrap(); // source in partition 1
        let applied = vg.quiesce().unwrap();
        assert_eq!(applied.dirty_partitions, vec![1]);
        assert_eq!(applied.partitions_rematerialized, 1);
        assert_eq!(applied.partitions_shared, 3);
        let new = &applied.graph;
        assert!(!Arc::ptr_eq(new.store(1), base.store(1)), "dirty store rebuilt");
        for p in [0, 2, 3] {
            assert!(Arc::ptr_eq(new.store(p), base.store(p)), "clean store {p} shared");
        }
        // And the partial rebuild is equivalent to a from-scratch build.
        let mut edges: Vec<Edge> = base.graph().edges().collect();
        edges.push((2, 5, 4));
        let scratch = pg(&edges, 8, 4);
        assert_eq!(new.graph(), scratch.graph());
        assert_eq!(new.store(1).edge_segment(), scratch.store(1).edge_segment());
        assert_eq!(new.store(1).quotient_row, scratch.store(1).quotient_row);
    }

    /// Deletions rebuild the owning partition too, and a net-no-op batch
    /// shares the entire snapshot.
    #[test]
    fn fold_reuse_extends_to_whole_snapshot_on_net_noop() {
        let base = pg(&[(0, 1, 5), (4, 5, 1)], 8, 4);
        let vg = VersionedGraph::new(Arc::clone(&base));
        vg.delete_edge(0, 1).unwrap();
        vg.insert_edge(0, 1, 5).unwrap();
        let applied = vg.quiesce().unwrap();
        assert_eq!(applied.version, 1, "net no-op still bumps the version");
        assert_eq!(applied.partitions_rematerialized, 0);
        assert_eq!(applied.partitions_shared, 4);
        assert!(Arc::ptr_eq(&applied.graph, &base), "whole snapshot shared");

        vg.delete_edge(4, 5).unwrap();
        let applied = vg.quiesce().unwrap();
        assert!(!applied.monotone);
        assert_eq!(applied.dirty_partitions, vec![2]);
        assert!(!Arc::ptr_eq(applied.graph.store(2), base.store(2)));
        assert_eq!(applied.graph.graph().num_edges(), 1);
    }

    /// prepare() leaves the log pending (cache-freshness checks keep firing)
    /// until publish() drains exactly the consumed prefix.
    #[test]
    fn prepare_keeps_log_pending_until_publish() {
        let vg = VersionedGraph::new(pg(&[(0, 2, 1)], 8, 4));
        vg.insert_edge(2, 4, 3).unwrap();
        let fold = vg.prepare().expect("one pending mutation");
        assert_eq!(fold.mutations(), 1);
        assert_eq!(fold.base_version(), 0);
        assert_eq!(fold.dirty_partitions(), &[1]);
        // Mid-fold: still pending, still poisoning affected sources.
        assert!(vg.has_pending());
        assert!(vg.pending_affects(0), "source reaching the edit stays poisoned mid-fold");
        assert_eq!(vg.version(), 0);
        // A mutation logged mid-fold survives the publish drain.
        vg.insert_edge(6, 7, 1).unwrap();
        let applied = vg.publish(fold);
        assert_eq!(applied.version, 1);
        assert_eq!(applied.mutations, 1);
        assert_eq!(vg.pending_mutations(), 1, "mid-fold log entry still pending");
        assert!(vg.pending_affects(6));
        let applied = vg.advance().unwrap();
        assert_eq!(applied.version, 2);
        assert!(!vg.has_pending());
    }

    #[test]
    fn epochs_track_versions_and_reclaim_on_unpin() {
        let vg = VersionedGraph::new(pg(&[(0, 1, 1)], 8, 2));
        let guard = vg.pin();
        assert_eq!(guard.epoch(), 0);
        vg.insert_edge(1, 2, 1).unwrap();
        vg.quiesce().unwrap();
        assert_eq!(vg.epochs().epochs_advanced(), 1);
        assert_eq!(vg.epochs().live_epochs(), 2, "epoch 0 pinned across the advance");
        assert_eq!(vg.epochs().oldest_pinned_epoch_lag(), 1);
        let fresh = vg.pin();
        assert_eq!(fresh.epoch(), vg.version());
        assert_eq!(guard.graph().graph().num_edges(), 1, "pinned snapshot is immutable");
        assert_eq!(fresh.graph().graph().num_edges(), 2);
        drop(guard);
        assert_eq!(vg.epochs().live_epochs(), 1);
        assert_eq!(vg.epochs().snapshots_reclaimed(), 1);
    }

    #[test]
    fn wait_for_version_blocks_until_quiesce() {
        let vg = Arc::new(VersionedGraph::new(pg(&[(0, 1, 1)], 4, 2)));
        let target = vg.insert_edge(1, 2, 1).unwrap();
        let waiter = {
            let vg = Arc::clone(&vg);
            std::thread::spawn(move || {
                vg.wait_for_version(target);
                vg.version()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        vg.quiesce().unwrap();
        assert_eq!(waiter.join().unwrap(), target);
    }
}
