//! Versioned graph storage with edge mutations.
//!
//! The engine and everything above it consume an immutable
//! [`Arc<PartitionedGraph>`]; this module is the seam that lets the graph
//! *change* without any in-flight run observing a half-applied batch.
//!
//! [`VersionedGraph`] pairs the current snapshot with a pending delta log of
//! [`EdgeMutation`]s. Writers append to the log at any time; readers keep
//! whatever snapshot they resolved. At a **quiesce point** — a moment the
//! owner guarantees no run holds partition state, e.g. between service
//! batches — [`VersionedGraph::quiesce`] merges the log into a fresh CSR,
//! re-partitions it under the *same* [`PartitionPlan`] (vertex count is
//! immutable, so the old assignment stays valid), and atomically swaps the
//! snapshot. The returned [`AppliedDeltas`] tells the caller everything it
//! needs for cache invalidation and incremental restart:
//!
//! * whether the batch was **monotone** — every effective change is a new
//!   edge or a weight decrease, so monotone-relaxation kernels (SSSP/BFS)
//!   can re-converge from the delta frontier instead of from scratch;
//! * the effective `seed_edges` (final weights) for that restart;
//! * a partition-granular [`PartitionReachability`] over-approximation of
//!   which cached sources the batch can possibly affect.
//!
//! Reachability is computed on the partition quotient graph (partition `p`
//! has an arc to `q` iff some edge crosses from `p` to `q`), closed
//! reflexively and transitively with bitset rows. A mutation on edge
//! `(u, v)` can only change the result of a source `s` if `s` reaches `u`;
//! `reaches(part(s), part(u))` over the *union* of old and new quotient
//! edges over-approximates that for inserts and deletes alike.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

use crate::partition::PartitionId;
use crate::partitioned::PartitionedGraph;
use crate::{CsrGraph, Edge, VertexId, Weight};

/// A single logged edge mutation.
///
/// Semantics at merge time (applied in log order):
/// * `Insert` of an existing edge overwrites its weight.
/// * `Delete` of a missing edge is a no-op.
/// * `UpdateWeight` of a missing edge inserts it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeMutation {
    /// Add edge `u → v` with weight `w` (or overwrite an existing weight).
    Insert {
        /// Source endpoint.
        u: VertexId,
        /// Target endpoint.
        v: VertexId,
        /// Edge weight.
        w: Weight,
    },
    /// Remove edge `u → v` if present.
    Delete {
        /// Source endpoint.
        u: VertexId,
        /// Target endpoint.
        v: VertexId,
    },
    /// Set the weight of `u → v` to `w` (inserting if absent).
    UpdateWeight {
        /// Source endpoint.
        u: VertexId,
        /// Target endpoint.
        v: VertexId,
        /// New edge weight.
        w: Weight,
    },
}

impl EdgeMutation {
    /// The `(u, v)` endpoints the mutation touches.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            EdgeMutation::Insert { u, v, .. }
            | EdgeMutation::Delete { u, v }
            | EdgeMutation::UpdateWeight { u, v, .. } => (u, v),
        }
    }
}

/// Why a mutation was rejected at log time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationError {
    /// An endpoint is outside the (immutable) vertex range.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// Self-loops are never stored (the builder drops them too).
    SelfLoop {
        /// The vertex looping onto itself.
        vertex: VertexId,
    },
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MutationError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range for graph with {num_vertices} vertices")
            }
            MutationError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} rejected")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// Reflexive-transitive closure of the partition quotient graph, stored as
/// one bitset row per source partition.
#[derive(Clone, Debug)]
pub struct PartitionReachability {
    num_partitions: usize,
    words_per_row: usize,
    rows: Vec<u64>,
}

impl PartitionReachability {
    /// Closure over the quotient adjacency `adj` (same row layout).
    fn close(num_partitions: usize, adj: &[u64]) -> Self {
        let words = num_partitions.div_ceil(64).max(1);
        let mut rows = adj.to_vec();
        // Reflexive.
        for p in 0..num_partitions {
            rows[p * words + p / 64] |= 1u64 << (p % 64);
        }
        // Warshall with bitset rows: if i reaches k, i reaches all of row k.
        for k in 0..num_partitions {
            for i in 0..num_partitions {
                if rows[i * words + k / 64] >> (k % 64) & 1 == 1 {
                    for w in 0..words {
                        let bits = rows[k * words + w];
                        rows[i * words + w] |= bits;
                    }
                }
            }
        }
        PartitionReachability { num_partitions, words_per_row: words, rows }
    }

    /// Number of partitions this closure covers.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Can partition `from` reach partition `to` (reflexively)?
    pub fn reaches(&self, from: PartitionId, to: PartitionId) -> bool {
        let (from, to) = (from as usize, to as usize);
        debug_assert!(from < self.num_partitions && to < self.num_partitions);
        self.rows[from * self.words_per_row + to / 64] >> (to % 64) & 1 == 1
    }

    /// Partitions that can reach *any* partition in `dirty` — i.e. the set
    /// of source partitions whose cached results a batch touching `dirty`
    /// could possibly change. Returned as a dense membership vector.
    pub fn partitions_reaching(&self, dirty: &[PartitionId]) -> Vec<bool> {
        let words = self.words_per_row;
        let mut mask = vec![0u64; words];
        for &d in dirty {
            let d = d as usize;
            debug_assert!(d < self.num_partitions);
            mask[d / 64] |= 1u64 << (d % 64);
        }
        (0..self.num_partitions)
            .map(|p| (0..words).any(|w| self.rows[p * words + w] & mask[w] != 0))
            .collect()
    }

    /// Does `from`'s row intersect the raw bitset `mask` (same word layout)?
    fn row_intersects(&self, from: PartitionId, mask: &[u64]) -> bool {
        let words = self.words_per_row;
        let base = from as usize * words;
        (0..words).any(|w| self.rows[base + w] & mask[w] != 0)
    }
}

/// Quotient adjacency of `graph` under its own partition plan: bit `q` of
/// row `p` is set iff some edge goes from partition `p` to partition `q`.
fn quotient_adjacency(pg: &PartitionedGraph) -> Vec<u64> {
    let parts = pg.num_partitions();
    let words = parts.div_ceil(64).max(1);
    let mut adj = vec![0u64; parts * words];
    for (u, v, _) in pg.graph().edges() {
        let (pu, pv) = (pg.partition_of(u) as usize, pg.partition_of(v) as usize);
        adj[pu * words + pv / 64] |= 1u64 << (pv % 64);
    }
    adj
}

/// One applied mutation batch: the new snapshot plus everything the caller
/// needs for invalidation and incremental restart.
pub struct AppliedDeltas {
    /// The post-merge snapshot (same plan, new CSR).
    pub graph: Arc<PartitionedGraph>,
    /// Version of the new snapshot.
    pub version: u64,
    /// How many logged mutations this batch merged.
    pub mutations: usize,
    /// `true` iff every *effective* change was an edge insertion or a weight
    /// decrease — the precondition for delta-frontier restart of monotone
    /// relaxation kernels. Any deletion or weight increase clears it.
    pub monotone: bool,
    /// Effective inserted/decreased edges with their final weights: the
    /// delta frontier seeds for an incremental re-run. Only meaningful when
    /// [`monotone`](Self::monotone); populated regardless.
    pub seed_edges: Vec<Edge>,
    /// Partitions containing the source endpoint of an effective change.
    pub dirty_partitions: Vec<PartitionId>,
    /// Reachability closure over the *union* of old and new quotient edges —
    /// safe for deciding which cached sources the batch might affect.
    pub reach: PartitionReachability,
}

struct VgInner {
    current: Arc<PartitionedGraph>,
    version: u64,
    pending: Vec<EdgeMutation>,
    /// Quotient adjacency of `current` (cached so per-mutation reachability
    /// updates don't rescan the edge list).
    adj: Vec<u64>,
    /// Closure over `adj` ∪ pending endpoints' quotient arcs — the
    /// over-approximation used to answer "could a pending mutation affect
    /// source s?" before the batch is applied.
    pending_reach: Option<PartitionReachability>,
    /// Bitset of partitions containing a pending mutation's source endpoint.
    pending_touched: Vec<u64>,
}

impl VgInner {
    fn words(&self) -> usize {
        self.current.num_partitions().div_ceil(64).max(1)
    }

    fn refresh_pending_reach(&mut self) {
        let parts = self.current.num_partitions();
        let words = self.words();
        if self.pending.is_empty() {
            self.pending_reach = None;
            self.pending_touched = vec![0u64; words];
            return;
        }
        let mut adj = self.adj.clone();
        let mut touched = vec![0u64; words];
        for m in &self.pending {
            let (u, v) = m.endpoints();
            let pu = self.current.partition_of(u) as usize;
            let pv = self.current.partition_of(v) as usize;
            adj[pu * words + pv / 64] |= 1u64 << (pv % 64);
            touched[pu / 64] |= 1u64 << (pu % 64);
        }
        self.pending_reach = Some(PartitionReachability::close(parts, &adj));
        self.pending_touched = touched;
    }
}

/// The versioned storage seam: an atomically swappable graph snapshot plus a
/// pending mutation log, merged at quiesce points.
///
/// Thread-safe; writers and readers may call concurrently. Only one caller
/// should drive [`quiesce`](Self::quiesce) (typically the batch loop that
/// owns the quiesce points), but concurrent quiesce calls are merely
/// serialized, never incorrect.
pub struct VersionedGraph {
    inner: Mutex<VgInner>,
    applied: Condvar,
    /// Serializes the (deliberately lock-free-in-the-middle) quiesce merge.
    quiesce_gate: Mutex<()>,
}

impl VersionedGraph {
    /// Wrap `graph` as version 0 with an empty mutation log.
    pub fn new(graph: Arc<PartitionedGraph>) -> Self {
        let adj = quotient_adjacency(&graph);
        let words = graph.num_partitions().div_ceil(64).max(1);
        VersionedGraph {
            inner: Mutex::new(VgInner {
                current: graph,
                version: 0,
                pending: Vec::new(),
                adj,
                pending_reach: None,
                pending_touched: vec![0u64; words],
            }),
            applied: Condvar::new(),
            quiesce_gate: Mutex::new(()),
        }
    }

    /// The current snapshot. Runs resolved against it stay valid for their
    /// lifetime; quiesce swaps the pointer, it never mutates the pointee.
    pub fn current(&self) -> Arc<PartitionedGraph> {
        Arc::clone(&self.inner.lock().unwrap().current)
    }

    /// Version of the current snapshot (0 at construction, +1 per applied
    /// batch).
    pub fn version(&self) -> u64 {
        self.inner.lock().unwrap().version
    }

    /// Number of logged-but-unapplied mutations.
    pub fn pending_mutations(&self) -> usize {
        self.inner.lock().unwrap().pending.len()
    }

    /// Is there anything waiting for the next quiesce point?
    pub fn has_pending(&self) -> bool {
        !self.inner.lock().unwrap().pending.is_empty()
    }

    /// Could *any* pending mutation affect results computed from `source`?
    /// Over-approximate (partition-granular, union reachability); `false`
    /// means a cached result for `source` is definitely still fresh.
    pub fn pending_affects(&self, source: VertexId) -> bool {
        let inner = self.inner.lock().unwrap();
        match &inner.pending_reach {
            None => false,
            Some(reach) => {
                let ps = inner.current.partition_of(source);
                reach.row_intersects(ps, &inner.pending_touched)
            }
        }
    }

    /// Log `insert_edge(u, v, w)`. Returns the version that will first
    /// contain it (current version + 1).
    pub fn insert_edge(&self, u: VertexId, v: VertexId, w: Weight) -> Result<u64, MutationError> {
        self.log(EdgeMutation::Insert { u, v, w })
    }

    /// Log `delete_edge(u, v)`. Returns the version that will first reflect
    /// it.
    pub fn delete_edge(&self, u: VertexId, v: VertexId) -> Result<u64, MutationError> {
        self.log(EdgeMutation::Delete { u, v })
    }

    /// Log `update_weight(u, v, w)`. Returns the version that will first
    /// reflect it.
    pub fn update_weight(&self, u: VertexId, v: VertexId, w: Weight) -> Result<u64, MutationError> {
        self.log(EdgeMutation::UpdateWeight { u, v, w })
    }

    /// Validate and append one mutation to the pending log.
    pub fn log(&self, mutation: EdgeMutation) -> Result<u64, MutationError> {
        let mut inner = self.inner.lock().unwrap();
        let n = inner.current.graph().num_vertices();
        let (u, v) = mutation.endpoints();
        for endpoint in [u, v] {
            if endpoint as usize >= n {
                return Err(MutationError::VertexOutOfRange { vertex: endpoint, num_vertices: n });
            }
        }
        if u == v {
            return Err(MutationError::SelfLoop { vertex: u });
        }
        inner.pending.push(mutation);
        inner.refresh_pending_reach();
        Ok(inner.version + 1)
    }

    /// Block until the snapshot version reaches `version` (i.e. every
    /// mutation logged before the corresponding call has been applied).
    pub fn wait_for_version(&self, version: u64) {
        let mut inner = self.inner.lock().unwrap();
        while inner.version < version {
            inner = self.applied.wait(inner).unwrap();
        }
    }

    /// Merge the pending log into a fresh snapshot. Returns `None` when the
    /// log is empty. Must only be called at a quiesce point: no in-flight
    /// run may straddle the swap (runs holding the *old* snapshot Arc are
    /// fine — they just see the pre-batch graph).
    ///
    /// Mutations logged concurrently with the merge stay pending for the
    /// next quiesce; the merge itself holds the inner lock only to take the
    /// log and to publish the result.
    pub fn quiesce(&self) -> Option<AppliedDeltas> {
        let _gate = self.quiesce_gate.lock().unwrap();
        let (old, batch) = {
            let mut inner = self.inner.lock().unwrap();
            if inner.pending.is_empty() {
                return None;
            }
            (Arc::clone(&inner.current), std::mem::take(&mut inner.pending))
        };

        // Replay the log over the old edge set. BTreeMap keeps (src, dst)
        // order so the CSR rebuild needs no sort.
        let csr = old.graph();
        let mut edges: BTreeMap<(VertexId, VertexId), Weight> =
            csr.edges().map(|(u, v, w)| ((u, v), w)).collect();
        let mut monotone = true;
        // Effective final state per touched endpoint pair, plus the weight
        // the pair had before the batch (None = absent).
        let mut touched: BTreeMap<(VertexId, VertexId), Option<Weight>> = BTreeMap::new();
        for m in &batch {
            let (u, v) = m.endpoints();
            touched.entry((u, v)).or_insert_with(|| edges.get(&(u, v)).copied());
            match *m {
                EdgeMutation::Insert { u, v, w } | EdgeMutation::UpdateWeight { u, v, w } => {
                    edges.insert((u, v), w);
                }
                EdgeMutation::Delete { u, v } => {
                    edges.remove(&(u, v));
                }
            }
        }

        let mut seed_edges = Vec::new();
        let mut dirty = vec![false; old.num_partitions()];
        for (&(u, v), &before) in &touched {
            let after = edges.get(&(u, v)).copied();
            match (before, after) {
                (None, None) => continue,                                  // net no-op
                (Some(b), Some(a)) if a == b => continue,                  // net no-op
                (None, Some(a)) => seed_edges.push((u, v, a)),             // new edge
                (Some(b), Some(a)) if a < b => seed_edges.push((u, v, a)), // decrease
                _ => monotone = false, // deletion or weight increase
            }
            dirty[old.partition_of(u) as usize] = true;
        }
        let dirty_partitions: Vec<PartitionId> =
            (0..old.num_partitions() as PartitionId).filter(|&p| dirty[p as usize]).collect();

        let flat: Vec<Edge> = edges.iter().map(|(&(u, v), &w)| (u, v, w)).collect();
        let new_csr =
            Arc::new(CsrGraph::from_sorted_edges(csr.num_vertices(), &flat, csr.is_weighted()));
        let new_pg =
            Arc::new(PartitionedGraph::from_plan(new_csr, old.plan().clone(), *old.config()));
        let new_adj = quotient_adjacency(&new_pg);

        // Union closure: old ∪ new quotient arcs cover both "could reach the
        // deleted edge" and "can reach the inserted edge".
        let old_adj = quotient_adjacency(&old);
        let union: Vec<u64> = old_adj.iter().zip(&new_adj).map(|(a, b)| a | b).collect();
        let reach = PartitionReachability::close(old.num_partitions(), &union);

        let version = {
            let mut inner = self.inner.lock().unwrap();
            inner.current = Arc::clone(&new_pg);
            inner.version += 1;
            inner.adj = new_adj;
            inner.refresh_pending_reach();
            self.applied.notify_all();
            inner.version
        };

        Some(AppliedDeltas {
            graph: new_pg,
            version,
            mutations: batch.len(),
            monotone,
            seed_edges,
            dirty_partitions,
            reach,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionConfig, PartitionMethod, PartitionPlan};

    /// Fixed even chunking: vertex `v` lands in partition `v / (n / parts)`,
    /// so tests can reason about the quotient graph exactly.
    fn pg(edges: &[Edge], n: usize, parts: usize) -> Arc<PartitionedGraph> {
        let mut sorted = edges.to_vec();
        sorted.sort_unstable();
        let csr = Arc::new(CsrGraph::from_sorted_edges(n, &sorted, true));
        let chunk = n / parts;
        let plan = PartitionPlan {
            assignment: (0..n).map(|v| ((v / chunk).min(parts - 1)) as PartitionId).collect(),
            num_partitions: parts,
        };
        Arc::new(PartitionedGraph::from_plan(
            csr,
            plan,
            PartitionConfig::with_partitions(PartitionMethod::Chunked, parts),
        ))
    }

    #[test]
    fn insert_bumps_version_and_adds_edge() {
        let vg = VersionedGraph::new(pg(&[(0, 1, 5)], 8, 2));
        assert_eq!(vg.version(), 0);
        assert!(!vg.has_pending());
        let target = vg.insert_edge(1, 2, 7).unwrap();
        assert_eq!(target, 1);
        assert!(vg.has_pending());
        let applied = vg.quiesce().expect("one pending mutation");
        assert_eq!(applied.version, 1);
        assert_eq!(vg.version(), 1);
        assert!(applied.monotone);
        assert_eq!(applied.seed_edges, vec![(1, 2, 7)]);
        assert_eq!(applied.mutations, 1);
        let g = vg.current();
        assert_eq!(g.graph().num_edges(), 2);
        assert_eq!(g.graph().out_edges(1).collect::<Vec<_>>(), vec![(2, 7)]);
        assert!(!vg.has_pending());
        assert!(vg.quiesce().is_none());
    }

    #[test]
    fn merge_semantics_follow_log_order() {
        let vg = VersionedGraph::new(pg(&[(0, 1, 5)], 8, 2));
        vg.insert_edge(0, 1, 3).unwrap(); // overwrite = decrease
        vg.delete_edge(2, 3).unwrap(); // delete missing = no-op
        vg.update_weight(4, 5, 9).unwrap(); // update missing = insert
        let applied = vg.quiesce().unwrap();
        assert!(applied.monotone, "no effective delete/increase in this batch");
        let mut seeds = applied.seed_edges.clone();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![(0, 1, 3), (4, 5, 9)]);
        let g = vg.current();
        assert_eq!(g.graph().out_edges(0).collect::<Vec<_>>(), vec![(1, 3)]);
        assert_eq!(g.graph().out_edges(4).collect::<Vec<_>>(), vec![(5, 9)]);
        assert_eq!(g.graph().out_neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn delete_and_increase_clear_monotone() {
        let base = pg(&[(0, 1, 5), (1, 2, 2)], 8, 2);
        let vg = VersionedGraph::new(Arc::clone(&base));
        vg.delete_edge(0, 1).unwrap();
        let applied = vg.quiesce().unwrap();
        assert!(!applied.monotone);
        assert_eq!(vg.current().graph().num_edges(), 1);

        let vg = VersionedGraph::new(base);
        vg.update_weight(1, 2, 10).unwrap(); // increase
        assert!(!vg.quiesce().unwrap().monotone);
    }

    #[test]
    fn net_noop_batch_is_monotone_with_no_seeds() {
        let vg = VersionedGraph::new(pg(&[(0, 1, 5)], 8, 2));
        vg.delete_edge(0, 1).unwrap();
        vg.insert_edge(0, 1, 5).unwrap(); // restores the original weight
        let applied = vg.quiesce().unwrap();
        assert!(applied.monotone);
        assert!(applied.seed_edges.is_empty());
        assert!(applied.dirty_partitions.is_empty());
        assert_eq!(applied.mutations, 2);
    }

    #[test]
    fn mutation_validation() {
        let vg = VersionedGraph::new(pg(&[(0, 1, 5)], 4, 2));
        assert_eq!(
            vg.insert_edge(0, 9, 1),
            Err(MutationError::VertexOutOfRange { vertex: 9, num_vertices: 4 })
        );
        assert_eq!(vg.insert_edge(2, 2, 1), Err(MutationError::SelfLoop { vertex: 2 }));
        assert!(!vg.has_pending());
    }

    #[test]
    fn plan_is_preserved_across_quiesce() {
        let base = pg(&[(0, 1, 1), (4, 5, 1)], 8, 4);
        let plan_before = base.plan().clone();
        let vg = VersionedGraph::new(base);
        vg.insert_edge(1, 4, 2).unwrap();
        let applied = vg.quiesce().unwrap();
        assert_eq!(applied.graph.plan(), &plan_before);
        assert_eq!(applied.graph.num_partitions(), 4);
    }

    #[test]
    fn reachability_over_approximates_affected_sources() {
        // Chunked over 8 vertices / 4 partitions: {0,1} {2,3} {4,5} {6,7}.
        // Chain 0→2→4: partition 0 reaches 1 reaches 2; partition 3 isolated.
        let base = pg(&[(0, 2, 1), (2, 4, 1)], 8, 4);
        let vg = VersionedGraph::new(base);
        vg.insert_edge(4, 5, 1).unwrap(); // mutation inside partition 2

        // Pending check: sources in partitions 0, 1, 2 can reach partition 2;
        // partition 3 cannot.
        assert!(vg.pending_affects(0));
        assert!(vg.pending_affects(2));
        assert!(vg.pending_affects(4), "same-partition sources are always affected");
        assert!(!vg.pending_affects(6));

        let applied = vg.quiesce().unwrap();
        assert_eq!(applied.dirty_partitions, vec![2]);
        let affected = applied.reach.partitions_reaching(&applied.dirty_partitions);
        assert_eq!(affected, vec![true, true, true, false]);
        assert!(!vg.pending_affects(0), "log drained, nothing pending");
    }

    #[test]
    fn union_reachability_covers_deleted_paths() {
        // 0→2 is the only inter-partition arc; delete it. Old-graph
        // reachability must still say partition 0 is affected.
        let vg = VersionedGraph::new(pg(&[(0, 2, 1)], 4, 2));
        vg.delete_edge(0, 2).unwrap();
        assert!(vg.pending_affects(0));
        let applied = vg.quiesce().unwrap();
        assert!(!applied.monotone);
        let affected = applied.reach.partitions_reaching(&applied.dirty_partitions);
        assert!(affected[0], "source partition of the deleted edge is affected");
    }

    #[test]
    fn wait_for_version_blocks_until_quiesce() {
        let vg = Arc::new(VersionedGraph::new(pg(&[(0, 1, 1)], 4, 2)));
        let target = vg.insert_edge(1, 2, 1).unwrap();
        let waiter = {
            let vg = Arc::clone(&vg);
            std::thread::spawn(move || {
                vg.wait_for_version(target);
                vg.version()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        vg.quiesce().unwrap();
        assert_eq!(waiter.join().unwrap(), target);
    }
}
