//! Mutable edge-list builder for [`CsrGraph`].

use crate::{CsrGraph, Edge, VertexId, Weight};

/// Accumulates edges and produces a [`CsrGraph`].
///
/// The builder deduplicates parallel edges (keeping the minimum weight, which is
/// the correct semantics for shortest-path workloads) and removes self-loops by
/// default. Vertex count grows automatically to cover the largest id seen.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<Edge>,
    weighted: bool,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Create a builder for a graph with at least `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder { num_vertices, edges: Vec::new(), weighted: false, keep_self_loops: false }
    }

    /// Keep self-loops instead of dropping them at build time.
    pub fn keep_self_loops(mut self, keep: bool) -> Self {
        self.keep_self_loops = keep;
        self
    }

    /// Number of edges currently buffered (before dedup).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Add a weighted directed edge.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.weighted = true;
        self.push(u, v, w);
    }

    /// Add an unweighted directed edge (weight 1).
    pub fn add_unweighted_edge(&mut self, u: VertexId, v: VertexId) {
        self.push(u, v, 1);
    }

    /// Add both directions of an undirected weighted edge.
    pub fn add_undirected_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.add_edge(u, v, w);
        self.add_edge(v, u, w);
    }

    fn push(&mut self, u: VertexId, v: VertexId, w: Weight) {
        let needed = u.max(v) as usize + 1;
        if needed > self.num_vertices {
            self.num_vertices = needed;
        }
        self.edges.push((u, v, w));
    }

    /// Add the reverse of every edge currently buffered, turning the edge list
    /// into an undirected (symmetric) graph.
    pub fn symmetrize(&mut self) {
        let reversed: Vec<Edge> = self.edges.iter().map(|&(u, v, w)| (v, u, w)).collect();
        self.edges.extend(reversed);
    }

    /// Build the immutable CSR graph: sorts, drops self-loops (unless kept),
    /// and deduplicates parallel edges keeping the minimum weight.
    pub fn build(mut self) -> CsrGraph {
        if !self.keep_self_loops {
            self.edges.retain(|&(u, v, _)| u != v);
        }
        self.edges.sort_unstable_by_key(|&(u, v, w)| (u, v, w));
        self.edges.dedup_by_key(|&mut (u, v, _)| (u, v));
        CsrGraph::from_sorted_edges(self.num_vertices, &self.edges, self.weighted)
    }

    /// Build from an existing edge list in one call.
    pub fn from_edges(num_vertices: usize, edges: &[Edge], weighted: bool) -> CsrGraph {
        let mut b = GraphBuilder::new(num_vertices);
        for &(u, v, w) in edges {
            if weighted {
                b.add_edge(u, v, w);
            } else {
                b.add_unweighted_edge(u, v);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count_grows_with_ids() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(5, 9, 2);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1, 4);
        b.add_edge(1, 2, 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_neighbors(1), &[2]);
    }

    #[test]
    fn self_loops_kept_when_requested() {
        let mut b = GraphBuilder::new(3).keep_self_loops(true);
        b.add_edge(1, 1, 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_neighbors(1), &[1]);
    }

    #[test]
    fn parallel_edges_keep_minimum_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 9);
        b.add_edge(0, 1, 3);
        b.add_edge(0, 1, 7);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_edges(0).next(), Some((1, 3)));
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 5);
        b.symmetrize();
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(1), &[0, 2]);
        assert_eq!(g.out_edges(2).next(), Some((1, 5)));
    }

    #[test]
    fn undirected_edge_helper() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(0, 1, 7);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_edges(0).next(), Some((1, 7)));
        assert_eq!(g.out_edges(1).next(), Some((0, 7)));
    }

    #[test]
    fn from_edges_matches_incremental_building() {
        let edges = vec![(0, 1, 1), (1, 2, 2), (2, 0, 3)];
        let g1 = GraphBuilder::from_edges(3, &edges, true);
        let mut b = GraphBuilder::new(3);
        for &(u, v, w) in &edges {
            b.add_edge(u, v, w);
        }
        assert_eq!(g1, b.build());
    }

    #[test]
    fn builder_len_and_is_empty() {
        let mut b = GraphBuilder::new(2);
        assert!(b.is_empty());
        b.add_unweighted_edge(0, 1);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
