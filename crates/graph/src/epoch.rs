//! Epoch-based snapshot concurrency for dynamic graphs.
//!
//! The [`EpochTable`] is the MVCC spine of the dynamic-graph path: every
//! engine *run* pins the current epoch with an RAII [`SnapshotGuard`] (one pin
//! per run, not per query — the service batcher already consolidates queries
//! into cohorts, so the hot path never takes a per-query version check), while
//! the writer concurrently folds pending mutations into per-partition deltas
//! for the next epoch. [`EpochTable::advance`] publishes epoch `N+1` whose
//! [`PartitionedGraph`] shares every *clean* partition's
//! [`Arc<PartitionStore>`](crate::partitioned::PartitionStore) with epoch `N`;
//! only dirty partitions were re-materialized. Epoch `N`'s remaining private
//! storage (its dirty stores' old versions plus its monolithic CSR) is
//! reclaimed when the last guard pinning `N` drops.
//!
//! Lifecycle of one epoch:
//!
//! ```text
//!   advance(g, N) ──► live (pins come and go) ──► advance(g', N+1) retires N
//!                                                      │
//!                     pins == 0 at retire? ──── yes ──► reclaimed immediately
//!                                │ no
//!                                ▼
//!                     last SnapshotGuard drop ───────► reclaimed (counted in
//!                                                      snapshots_reclaimed)
//! ```
//!
//! Only the newest epoch can be pinned; retired epochs merely linger until
//! their readers finish. The table never blocks readers on writers or writers
//! on readers — `pin` and `advance` each take one short mutex section.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fg_trace::{EventKind, TraceSink};

use crate::partitioned::PartitionedGraph;

/// One epoch's bookkeeping entry.
#[derive(Debug)]
struct EpochEntry {
    epoch: u64,
    graph: Arc<PartitionedGraph>,
    pins: usize,
    /// Set when a newer epoch was published; a retired entry is removed (and
    /// its storage's last table reference dropped) when `pins` reaches zero.
    retired: bool,
}

#[derive(Debug, Default)]
struct EpochStats {
    epochs_advanced: AtomicU64,
    snapshots_reclaimed: AtomicU64,
    partitions_rematerialized: AtomicU64,
    partitions_shared: AtomicU64,
    /// Current epoch minus the oldest epoch still pinned (0 when nothing
    /// lags), refreshed at every pin/unpin/advance.
    oldest_pinned_lag: AtomicU64,
}

#[derive(Debug)]
struct EpochShared {
    /// Live and retired-but-pinned epochs, ascending by epoch number. The
    /// last entry is always the current (pinnable) epoch.
    list: Mutex<Vec<EpochEntry>>,
    stats: EpochStats,
    trace: Mutex<Option<Arc<TraceSink>>>,
}

impl EpochShared {
    fn emit(&self, kind: EventKind, a: u32, b: u32, c: u32) {
        if let Some(sink) = self.trace.lock().expect("epoch trace lock").as_ref() {
            sink.emit(kind, a, b, c);
        }
    }

    /// Recompute the pinned-epoch lag; call with the list lock held.
    fn refresh_lag(&self, list: &[EpochEntry]) {
        let current = list.last().map(|e| e.epoch).unwrap_or(0);
        let oldest_pinned = list.iter().find(|e| e.pins > 0).map(|e| e.epoch);
        let lag = oldest_pinned.map_or(0, |o| current - o);
        self.stats.oldest_pinned_lag.store(lag, Ordering::Relaxed);
    }
}

/// Tracks the current epoch's snapshot plus any older epochs still pinned by
/// in-flight runs. Cheap to clone (shared interior).
#[derive(Clone, Debug)]
pub struct EpochTable {
    inner: Arc<EpochShared>,
}

impl EpochTable {
    /// A table whose epoch 0 snapshot is `graph`.
    pub fn new(graph: Arc<PartitionedGraph>) -> EpochTable {
        EpochTable {
            inner: Arc::new(EpochShared {
                list: Mutex::new(vec![EpochEntry { epoch: 0, graph, pins: 0, retired: false }]),
                stats: EpochStats::default(),
                trace: Mutex::new(None),
            }),
        }
    }

    /// Route epoch events (`EpochPin`/`EpochUnpin`/`EpochAdvance`) to `sink`.
    pub fn attach_trace(&self, sink: Arc<TraceSink>) {
        *self.inner.trace.lock().expect("epoch trace lock") = Some(sink);
    }

    /// Pin the current epoch for one engine run. The returned guard keeps the
    /// snapshot's storage alive; the epoch is eligible for reclamation only
    /// after every guard on it has dropped.
    pub fn pin(&self) -> SnapshotGuard {
        let (epoch, graph, pins) = {
            let mut list = self.inner.list.lock().expect("epoch list lock");
            let entry = list.last_mut().expect("epoch table never empty");
            entry.pins += 1;
            let pinned = (entry.epoch, Arc::clone(&entry.graph), entry.pins);
            self.inner.refresh_lag(&list);
            pinned
        };
        self.inner.emit(EventKind::EpochPin, epoch as u32, pins as u32, 0);
        SnapshotGuard { shared: Arc::clone(&self.inner), epoch, graph }
    }

    /// Publish `graph` as epoch `epoch`, retiring the previous one. Epoch
    /// numbers must be strictly increasing; the caller
    /// ([`crate::mutation::VersionedGraph`]) uses its version counter, so
    /// epochs and graph versions coincide. `rematerialized`/`shared` are the
    /// dirty/clean partition counts of the fold that produced `graph`.
    pub fn advance(
        &self,
        graph: Arc<PartitionedGraph>,
        epoch: u64,
        rematerialized: usize,
        shared: usize,
    ) {
        let stats = &self.inner.stats;
        stats.epochs_advanced.fetch_add(1, Ordering::Relaxed);
        stats.partitions_rematerialized.fetch_add(rematerialized as u64, Ordering::Relaxed);
        stats.partitions_shared.fetch_add(shared as u64, Ordering::Relaxed);
        {
            let mut list = self.inner.list.lock().expect("epoch list lock");
            let prev = list.last_mut().expect("epoch table never empty");
            assert!(prev.epoch < epoch, "epochs must advance monotonically");
            prev.retired = true;
            if prev.pins == 0 {
                // Nobody read the outgoing epoch: its storage goes now (the
                // clean partitions survive through the new epoch's Arcs).
                list.pop();
                stats.snapshots_reclaimed.fetch_add(1, Ordering::Relaxed);
            }
            list.push(EpochEntry { epoch, graph, pins: 0, retired: false });
            self.inner.refresh_lag(&list);
        }
        self.inner.emit(
            EventKind::EpochAdvance,
            epoch as u32,
            rematerialized as u32,
            shared as u32,
        );
    }

    /// Number of epochs currently held by the table (1 when no old snapshot
    /// is pinned).
    pub fn live_epochs(&self) -> usize {
        self.inner.list.lock().expect("epoch list lock").len()
    }

    /// Total epochs published via [`EpochTable::advance`].
    pub fn epochs_advanced(&self) -> u64 {
        self.inner.stats.epochs_advanced.load(Ordering::Relaxed)
    }

    /// Retired snapshots whose storage has been released (at retire time or
    /// at last-guard drop).
    pub fn snapshots_reclaimed(&self) -> u64 {
        self.inner.stats.snapshots_reclaimed.load(Ordering::Relaxed)
    }

    /// Total partitions re-materialized across all advances.
    pub fn partitions_rematerialized(&self) -> u64 {
        self.inner.stats.partitions_rematerialized.load(Ordering::Relaxed)
    }

    /// Total partitions shared (Arc-reused) across all advances.
    pub fn partitions_shared(&self) -> u64 {
        self.inner.stats.partitions_shared.load(Ordering::Relaxed)
    }

    /// Current epoch minus the oldest epoch still pinned; 0 when every
    /// in-flight run reads the newest snapshot.
    pub fn oldest_pinned_epoch_lag(&self) -> u64 {
        self.inner.stats.oldest_pinned_lag.load(Ordering::Relaxed)
    }
}

/// RAII pin on one epoch's snapshot. Holding the guard keeps that epoch's
/// [`PartitionedGraph`] (and therefore every partition store it references)
/// alive; dropping the last guard on a retired epoch releases the table's
/// reference so the storage can be reclaimed.
#[derive(Debug)]
pub struct SnapshotGuard {
    shared: Arc<EpochShared>,
    epoch: u64,
    graph: Arc<PartitionedGraph>,
}

impl SnapshotGuard {
    /// The pinned epoch number (equal to the graph version it snapshots).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned snapshot. The reference cannot outlive the guard, so an
    /// engine borrowing it is type-checked against the pin's lifetime.
    pub fn graph(&self) -> &PartitionedGraph {
        &self.graph
    }

    /// Shared handle to the pinned snapshot (for callers that need to move
    /// it into a worker along with the guard).
    pub fn graph_arc(&self) -> Arc<PartitionedGraph> {
        Arc::clone(&self.graph)
    }
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        let (pins_left, reclaimed) = {
            let mut list = self.shared.list.lock().expect("epoch list lock");
            let idx = list
                .iter()
                .position(|e| e.epoch == self.epoch)
                .expect("pinned epoch present until last guard drops");
            list[idx].pins -= 1;
            let pins_left = list[idx].pins;
            let reclaimed = list[idx].retired && pins_left == 0;
            if reclaimed {
                list.remove(idx);
                self.shared.stats.snapshots_reclaimed.fetch_add(1, Ordering::Relaxed);
            }
            self.shared.refresh_lag(&list);
            (pins_left, reclaimed)
        };
        self.shared.emit(
            EventKind::EpochUnpin,
            self.epoch as u32,
            pins_left as u32,
            reclaimed as u32,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::partition::{PartitionConfig, PartitionMethod};

    fn snapshot(seed: u64) -> Arc<PartitionedGraph> {
        Arc::new(PartitionedGraph::build(
            &gen::rmat(7, 4, seed),
            PartitionConfig::with_partitions(PartitionMethod::Chunked, 4),
        ))
    }

    #[test]
    fn pin_reads_the_current_epoch() {
        let table = EpochTable::new(snapshot(1));
        let g0 = table.pin();
        assert_eq!(g0.epoch(), 0);
        table.advance(snapshot(2), 1, 2, 2);
        let g1 = table.pin();
        assert_eq!(g1.epoch(), 1);
        // The old pin still reads its own snapshot.
        assert!(!Arc::ptr_eq(&g0.graph_arc(), &g1.graph_arc()));
        assert_eq!(table.live_epochs(), 2);
        assert_eq!(table.oldest_pinned_epoch_lag(), 1);
    }

    #[test]
    fn retired_epoch_reclaimed_on_last_unpin() {
        let table = EpochTable::new(snapshot(3));
        let old = table.pin();
        let weak = Arc::downgrade(&old.graph_arc());
        table.advance(snapshot(4), 1, 4, 0);
        assert_eq!(table.snapshots_reclaimed(), 0);
        assert_eq!(table.live_epochs(), 2);
        drop(old);
        assert_eq!(table.snapshots_reclaimed(), 1);
        assert_eq!(table.live_epochs(), 1);
        assert!(weak.upgrade().is_none(), "epoch 0 storage freed at last unpin");
        assert_eq!(table.oldest_pinned_epoch_lag(), 0);
    }

    #[test]
    fn unpinned_epoch_reclaimed_at_advance() {
        let table = EpochTable::new(snapshot(5));
        table.advance(snapshot(6), 1, 1, 3);
        assert_eq!(table.live_epochs(), 1);
        assert_eq!(table.snapshots_reclaimed(), 1);
        assert_eq!(table.epochs_advanced(), 1);
        assert_eq!(table.partitions_rematerialized(), 1);
        assert_eq!(table.partitions_shared(), 3);
    }

    #[test]
    fn pin_counts_nest_and_release_in_any_order() {
        let table = EpochTable::new(snapshot(7));
        let a = table.pin();
        let b = table.pin();
        table.advance(snapshot(8), 1, 0, 4);
        drop(a);
        assert_eq!(table.live_epochs(), 2, "second pin keeps epoch 0 alive");
        drop(b);
        assert_eq!(table.live_epochs(), 1);
        assert_eq!(table.snapshots_reclaimed(), 1);
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn advance_rejects_non_monotone_epochs() {
        let table = EpochTable::new(snapshot(9));
        table.advance(snapshot(10), 0, 0, 0);
    }
}
