//! Graph summary statistics used in reports and sanity tests.

use crate::{CsrGraph, VertexId};

/// Summary statistics of a graph, mirroring the columns of Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// In-memory CSR size in bytes.
    pub size_bytes: usize,
    /// Number of vertices with no out-edges.
    pub num_sinks: usize,
    /// Approximate diameter from a double-sweep BFS heuristic (lower bound).
    pub approx_diameter: usize,
}

impl GraphStats {
    /// Compute the statistics of `graph`.
    pub fn compute(graph: &CsrGraph) -> GraphStats {
        let n = graph.num_vertices();
        let mut max_degree = 0usize;
        let mut num_sinks = 0usize;
        for v in 0..n as VertexId {
            let d = graph.out_degree(v);
            max_degree = max_degree.max(d);
            if d == 0 {
                num_sinks += 1;
            }
        }
        GraphStats {
            num_vertices: n,
            num_edges: graph.num_edges(),
            avg_degree: graph.avg_degree(),
            max_degree,
            size_bytes: graph.size_bytes(),
            num_sinks,
            approx_diameter: approx_diameter(graph),
        }
    }
}

/// Unweighted eccentricity lower bound via a double-sweep BFS: BFS from vertex
/// 0 (or the first non-isolated vertex), then BFS again from the farthest
/// vertex found. Returns 0 for empty or edgeless graphs.
pub fn approx_diameter(graph: &CsrGraph) -> usize {
    let n = graph.num_vertices();
    if n == 0 || graph.num_edges() == 0 {
        return 0;
    }
    let start = (0..n as VertexId).find(|&v| graph.out_degree(v) > 0).unwrap_or(0);
    let (far, _) = bfs_farthest(graph, start);
    let (_, dist) = bfs_farthest(graph, far);
    dist
}

/// BFS helper returning the farthest reached vertex and its hop distance.
fn bfs_farthest(graph: &CsrGraph, source: VertexId) -> (VertexId, usize) {
    let n = graph.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    let mut far = (source, 0usize);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du > far.1 {
            far = (u, du);
        }
        for &v in graph.out_neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    far
}

/// Degree histogram with logarithmic buckets: bucket `i` counts vertices whose
/// out-degree `d` satisfies `2^i <= d < 2^(i+1)` (bucket 0 additionally counts
/// degree-0 vertices separately in `zero`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Vertices with out-degree 0.
    pub zero: usize,
    /// Log-bucketed counts for degree >= 1.
    pub buckets: Vec<usize>,
}

impl DegreeHistogram {
    /// Compute the histogram of `graph`.
    pub fn compute(graph: &CsrGraph) -> DegreeHistogram {
        let mut hist = DegreeHistogram::default();
        for v in 0..graph.num_vertices() as VertexId {
            let d = graph.out_degree(v);
            if d == 0 {
                hist.zero += 1;
            } else {
                let bucket = (usize::BITS - 1 - d.leading_zeros()) as usize;
                if hist.buckets.len() <= bucket {
                    hist.buckets.resize(bucket + 1, 0);
                }
                hist.buckets[bucket] += 1;
            }
        }
        hist
    }

    /// Total number of vertices represented.
    pub fn total(&self) -> usize {
        self.zero + self.buckets.iter().sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_path_graph() {
        let g = gen::path(10);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 18);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.num_sinks, 0);
        assert_eq!(s.approx_diameter, 9);
    }

    #[test]
    fn road_diameter_exceeds_social_diameter() {
        let road = gen::grid2d(40, 40, 0.0, 1);
        let social = gen::rmat(10, 8, 1);
        let dr = approx_diameter(&road);
        let ds = approx_diameter(&social);
        assert!(dr > ds, "road {dr} vs social {ds}");
    }

    #[test]
    fn histogram_accounts_for_every_vertex() {
        let g = gen::rmat(9, 6, 4);
        let h = DegreeHistogram::compute(&g);
        assert_eq!(h.total(), g.num_vertices());
    }

    #[test]
    fn histogram_of_complete_graph_is_single_bucket() {
        let g = gen::complete(9); // degree 8 for every vertex
        let h = DegreeHistogram::compute(&g);
        assert_eq!(h.zero, 0);
        assert_eq!(h.buckets[3], 9); // bucket for 8..16
        assert_eq!(h.buckets.iter().sum::<usize>(), 9);
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::GraphBuilder::new(0).build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.approx_diameter, 0);
        assert_eq!(DegreeHistogram::compute(&g).total(), 0);
    }
}
