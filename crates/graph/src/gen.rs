//! Synthetic graph generators.
//!
//! The paper evaluates on eight real-world graphs (road networks, social
//! networks, a hyperlink network, and a citation network). Those datasets are
//! multi-gigabyte downloads, so the reproduction substitutes generators that
//! match the *structural properties* the experiments depend on:
//!
//! * [`rmat`] — recursive-matrix / Kronecker generator producing skewed,
//!   power-law degree distributions with low diameter (stands in for Orkut,
//!   LiveJournal, Twitter, Wikipedia).
//! * [`grid2d`] — 2D lattice with small random perturbations: bounded degree,
//!   very large diameter (stands in for the California / USA / Europe road
//!   networks).
//! * [`preferential_attachment`] — Barabási–Albert-style generator (stands in
//!   for the Patents citation network).
//! * [`erdos_renyi`] — uniform random graph, used by tests and microbenches.
//!
//! All generators are deterministic given a seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Generate an RMAT (Kronecker) graph with `2^scale` vertices and roughly
/// `edge_factor * 2^scale` undirected edges. Uses the standard Graph500
/// parameters (a, b, c) = (0.57, 0.19, 0.19).
///
/// The resulting degree distribution is heavily skewed, matching the social
/// network datasets in Table 2 of the paper.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    let n: u64 = 1 << scale;
    let m = edge_factor as u64 * n;
    let mut rng = SmallRng::seed_from_u64(seed);
    let (a, b, c) = (0.57f64, 0.19f64, 0.19f64);
    let mut builder = GraphBuilder::new(n as usize);
    for _ in 0..m {
        let (mut u, mut v) = (0u64, 0u64);
        let mut step = n >> 1;
        while step >= 1 {
            let r: f64 = rng.gen();
            if r < a {
                // top-left quadrant: nothing to add
            } else if r < a + b {
                v += step;
            } else if r < a + b + c {
                u += step;
            } else {
                u += step;
                v += step;
            }
            step >>= 1;
        }
        if u != v {
            builder.add_unweighted_edge(u as VertexId, v as VertexId);
            builder.add_unweighted_edge(v as VertexId, u as VertexId);
        }
    }
    builder.build()
}

/// Generate a 2D lattice ("road network") of `rows x cols` vertices with
/// 4-neighbour connectivity. A fraction `extra_edge_prob` of vertices receive
/// one extra random "shortcut" edge, mimicking highways.
///
/// The generated graph has average degree ≈ 4 and diameter Θ(rows + cols),
/// matching the road network datasets (Ca/Us/Eu) whose behaviour in the paper
/// is dominated by their huge diameters.
pub fn grid2d(rows: usize, cols: usize, extra_edge_prob: f64, seed: u64) -> CsrGraph {
    let n = rows * cols;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder.add_unweighted_edge(id(r, c), id(r, c + 1));
                builder.add_unweighted_edge(id(r, c + 1), id(r, c));
            }
            if r + 1 < rows {
                builder.add_unweighted_edge(id(r, c), id(r + 1, c));
                builder.add_unweighted_edge(id(r + 1, c), id(r, c));
            }
            if extra_edge_prob > 0.0 && rng.gen_bool(extra_edge_prob) {
                let t = rng.gen_range(0..n) as VertexId;
                let s = id(r, c);
                if t != s {
                    builder.add_unweighted_edge(s, t);
                    builder.add_unweighted_edge(t, s);
                }
            }
        }
    }
    builder.build()
}

/// Generate a preferential-attachment graph: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to their current
/// degree. Produces a power-law tail with low average degree, matching the
/// Patents citation graph (average degree 2.0 in Table 2).
pub fn preferential_attachment(
    num_vertices: usize,
    edges_per_vertex: usize,
    seed: u64,
) -> CsrGraph {
    assert!(num_vertices >= 2, "need at least two vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(num_vertices);
    // `endpoints` holds one entry per edge endpoint, so sampling uniformly from
    // it is sampling proportionally to degree.
    let mut endpoints: Vec<VertexId> = vec![0, 1];
    builder.add_unweighted_edge(0, 1);
    builder.add_unweighted_edge(1, 0);
    for v in 2..num_vertices as VertexId {
        for _ in 0..edges_per_vertex.max(1) {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v {
                builder.add_unweighted_edge(v, t);
                builder.add_unweighted_edge(t, v);
                endpoints.push(v);
                endpoints.push(t);
            }
        }
    }
    builder.build()
}

/// Generate a directed Erdős–Rényi `G(n, m)` graph with `num_edges` edges drawn
/// uniformly at random (self-loops discarded).
pub fn erdos_renyi(num_vertices: usize, num_edges: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(num_vertices);
    if num_vertices < 2 {
        return builder.build();
    }
    for _ in 0..num_edges {
        let u = rng.gen_range(0..num_vertices) as VertexId;
        let v = rng.gen_range(0..num_vertices) as VertexId;
        if u != v {
            builder.add_unweighted_edge(u, v);
        }
    }
    builder.build()
}

/// Generate a path graph `0 - 1 - 2 - … - (n-1)` (undirected). Mostly used in
/// tests and worked-example reproductions.
pub fn path(num_vertices: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new(num_vertices);
    for i in 1..num_vertices {
        builder.add_unweighted_edge((i - 1) as VertexId, i as VertexId);
        builder.add_unweighted_edge(i as VertexId, (i - 1) as VertexId);
    }
    builder.build()
}

/// Generate a complete graph on `n` vertices (undirected, unweighted).
pub fn complete(num_vertices: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new(num_vertices);
    for u in 0..num_vertices as VertexId {
        for v in 0..num_vertices as VertexId {
            if u != v {
                builder.add_unweighted_edge(u, v);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_has_expected_scale() {
        let g = rmat(8, 4, 1);
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() <= 2 * 4 * 256);
    }

    #[test]
    fn rmat_is_deterministic() {
        assert_eq!(rmat(7, 4, 99), rmat(7, 4, 99));
    }

    #[test]
    fn rmat_is_symmetric() {
        let g = rmat(6, 4, 3);
        for (u, v, _) in g.edges() {
            assert!(g.out_neighbors(v).contains(&u), "missing reverse of ({u},{v})");
        }
    }

    #[test]
    fn rmat_degree_distribution_is_skewed() {
        let g = rmat(10, 8, 5);
        let mut degrees: Vec<usize> =
            (0..g.num_vertices() as VertexId).map(|v| g.out_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = degrees[..degrees.len() / 100].iter().sum::<usize>() as f64;
        let total = degrees.iter().sum::<usize>() as f64;
        // Top 1% of vertices should hold a disproportionate share of edges.
        assert!(top / total > 0.05, "top share {}", top / total);
    }

    #[test]
    fn grid_structure() {
        let g = grid2d(10, 10, 0.0, 1);
        assert_eq!(g.num_vertices(), 100);
        // Interior vertices have degree 4, corners 2.
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(5 * 10 + 5), 4);
        // Undirected.
        for (u, v, _) in g.edges() {
            assert!(g.out_neighbors(v).contains(&u));
        }
    }

    #[test]
    fn grid_with_shortcuts_has_more_edges() {
        let plain = grid2d(20, 20, 0.0, 7);
        let shortcuts = grid2d(20, 20, 0.2, 7);
        assert!(shortcuts.num_edges() > plain.num_edges());
    }

    #[test]
    fn preferential_attachment_degrees() {
        let g = preferential_attachment(500, 2, 11);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.avg_degree() >= 1.5 && g.avg_degree() <= 8.0, "avg degree {}", g.avg_degree());
        // Earliest vertices should accumulate the largest degrees.
        let max_degree = (0..500u32).map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_degree > 10);
    }

    #[test]
    fn erdos_renyi_counts() {
        let g = erdos_renyi(100, 500, 3);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() <= 500);
        assert!(g.num_edges() > 400); // few collisions/self-loops at this density
    }

    #[test]
    fn path_and_complete() {
        let p = path(5);
        assert_eq!(p.num_edges(), 8);
        assert_eq!(p.out_degree(0), 1);
        assert_eq!(p.out_degree(2), 2);
        let k = complete(5);
        assert_eq!(k.num_edges(), 20);
        assert_eq!(k.out_degree(3), 4);
    }

    #[test]
    fn generators_handle_tiny_inputs() {
        assert_eq!(path(0).num_vertices(), 0);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(erdos_renyi(1, 10, 0).num_edges(), 0);
        assert_eq!(grid2d(1, 1, 0.0, 0).num_edges(), 0);
    }
}
