//! Scaled synthetic stand-ins for the paper's datasets (Table 2).
//!
//! The paper evaluates on eight real-world graphs ranging from 1.9 M to 61.6 M
//! vertices. This registry generates structurally similar graphs at a size that
//! runs in seconds on a laptop: road networks become 2D lattices (bounded
//! degree, huge diameter), social/web networks become RMAT graphs (skewed
//! degrees, small diameter), and the citation network becomes a
//! preferential-attachment graph. Every dataset can be scaled with
//! [`DatasetSpec::scaled`].

use serde::{Deserialize, Serialize};

use crate::{gen, CsrGraph};

/// Structural family of a dataset, mirroring the categories in Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphFamily {
    /// Road network: bounded degree, very large diameter (Ca, Us, Eu).
    Road,
    /// Social network: power-law degrees, small diameter (Or, Lj, Tw).
    Social,
    /// Hyperlink / web graph (Wk).
    Web,
    /// Citation network: sparse power-law (Pt).
    Citation,
}

/// A named synthetic dataset specification.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Short name used in the paper's tables ("Ca", "Lj", …).
    pub name: &'static str,
    /// Structural family, which selects the generator.
    pub family: GraphFamily,
    /// Approximate number of vertices at scale 1.0.
    pub base_vertices: usize,
    /// Target average degree.
    pub avg_degree: usize,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generate the graph at scale 1.0.
    pub fn generate(&self) -> CsrGraph {
        self.scaled(1.0)
    }

    /// Generate the graph with the vertex count multiplied by `scale`
    /// (clamped to at least 64 vertices).
    pub fn scaled(&self, scale: f64) -> CsrGraph {
        let n = ((self.base_vertices as f64 * scale) as usize).max(64);
        match self.family {
            GraphFamily::Road => {
                let side = (n as f64).sqrt().ceil() as usize;
                gen::grid2d(side, side, 0.02, self.seed)
            }
            GraphFamily::Social | GraphFamily::Web => {
                let scale_log = (n as f64).log2().ceil() as u32;
                gen::rmat(scale_log, (self.avg_degree / 2).max(1), self.seed)
            }
            GraphFamily::Citation => {
                gen::preferential_attachment(n, (self.avg_degree / 2).max(1), self.seed)
            }
        }
    }

    /// Generate the weighted variant used by SSSP-based workloads (weights
    /// uniform in `[1, log2 |V|)`, as in the paper).
    pub fn generate_weighted(&self, scale: f64) -> CsrGraph {
        let g = self.scaled(scale);
        let max_w = (g.num_vertices() as f64).log2().ceil().max(2.0) as u32;
        g.with_random_weights(max_w, self.seed ^ 0xdead_beef)
    }

    /// Whether the family is a road network (high diameter).
    pub fn is_road(&self) -> bool {
        self.family == GraphFamily::Road
    }
}

/// California road network stand-in (1.9 M vertices in the paper).
pub const CA: DatasetSpec = DatasetSpec {
    name: "Ca",
    family: GraphFamily::Road,
    base_vertices: 16_384,
    avg_degree: 3,
    seed: 101,
};
/// USA road network stand-in (23.9 M vertices in the paper).
pub const US: DatasetSpec = DatasetSpec {
    name: "Us",
    family: GraphFamily::Road,
    base_vertices: 40_000,
    avg_degree: 3,
    seed: 102,
};
/// Europe road network stand-in (50.9 M vertices in the paper).
pub const EU: DatasetSpec = DatasetSpec {
    name: "Eu",
    family: GraphFamily::Road,
    base_vertices: 65_536,
    avg_degree: 3,
    seed: 103,
};
/// Orkut social network stand-in (3.1 M vertices, avg degree 38).
pub const OR: DatasetSpec = DatasetSpec {
    name: "Or",
    family: GraphFamily::Social,
    base_vertices: 16_384,
    avg_degree: 30,
    seed: 104,
};
/// Wikipedia hyperlink graph stand-in (3.6 M vertices, avg degree 12.6).
pub const WK: DatasetSpec = DatasetSpec {
    name: "Wk",
    family: GraphFamily::Web,
    base_vertices: 16_384,
    avg_degree: 12,
    seed: 105,
};
/// LiveJournal social network stand-in (4.8 M vertices, avg degree 18).
pub const LJ: DatasetSpec = DatasetSpec {
    name: "Lj",
    family: GraphFamily::Social,
    base_vertices: 32_768,
    avg_degree: 18,
    seed: 106,
};
/// Patents citation network stand-in (16.5 M vertices, avg degree 2).
pub const PT: DatasetSpec = DatasetSpec {
    name: "Pt",
    family: GraphFamily::Citation,
    base_vertices: 40_000,
    avg_degree: 2,
    seed: 107,
};
/// Twitter social network stand-in (61.6 M vertices, avg degree 23.8).
pub const TW: DatasetSpec = DatasetSpec {
    name: "Tw",
    family: GraphFamily::Social,
    base_vertices: 65_536,
    avg_degree: 24,
    seed: 108,
};

/// All eight datasets in Table 2 order.
pub fn all() -> [DatasetSpec; 8] {
    [CA, US, EU, OR, WK, LJ, PT, TW]
}

/// The road networks (Ca, Us, Eu).
pub fn road_networks() -> [DatasetSpec; 3] {
    [CA, US, EU]
}

/// The social/web graphs used in the NCP experiments (Or, Wk, Lj, Pt, Tw).
pub fn ncp_graphs() -> [DatasetSpec; 5] {
    [OR, WK, LJ, PT, TW]
}

/// Look a dataset up by its short name (case-insensitive).
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    all().into_iter().find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_eight_datasets_with_unique_names() {
        let specs = all();
        assert_eq!(specs.len(), 8);
        let mut names: Vec<_> = specs.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("lj").unwrap().name, "Lj");
        assert_eq!(by_name("TW").unwrap().name, "Tw");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn road_graphs_have_bounded_degree() {
        let g = CA.scaled(0.2);
        let max_deg = (0..g.num_vertices() as u32).map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_deg <= 16, "road max degree {max_deg}");
        assert!(g.avg_degree() < 6.0);
    }

    #[test]
    fn social_graphs_are_skewed() {
        let g = LJ.scaled(0.25);
        let max_deg = (0..g.num_vertices() as u32).map(|v| g.out_degree(v)).max().unwrap();
        assert!(
            max_deg as f64 > 10.0 * g.avg_degree(),
            "social max degree {max_deg} avg {}",
            g.avg_degree()
        );
    }

    #[test]
    fn scaling_changes_size() {
        let small = US.scaled(0.05);
        let large = US.scaled(0.2);
        assert!(large.num_vertices() > small.num_vertices());
    }

    #[test]
    fn weighted_variant_has_weights_in_range() {
        let g = CA.generate_weighted(0.1);
        assert!(g.is_weighted());
        let max_w = (g.num_vertices() as f64).log2().ceil() as u32;
        for (_, _, w) in g.edges().take(1000) {
            assert!(w >= 1 && w <= max_w);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(WK.scaled(0.1), WK.scaled(0.1));
    }
}
