//! Snapshot-isolation property test: readers pinned on epoch N keep seeing
//! **exactly** epoch N — edge-for-edge and shortest-path-for-shortest-path —
//! while a writer concurrently folds epoch N+1, N+2, … under them.
//!
//! The oracle is a mirror history: before publishing version V the writer
//! appends the full edge map of V to a shared log. Every reader pin then has
//! a ground truth to diff against: the pinned snapshot's materialized edges
//! must equal `history[epoch]`, and a from-scratch Dijkstra over the pinned
//! CSR must equal Dijkstra over the mirror map. Any torn fold, premature
//! reclamation, or version skew shows up as a mismatch.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use fg_graph::gen;
use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{Dist, VersionedGraph, Weight, INF_DIST};

const N: usize = 64;
/// Issue floor is >= 120 randomized steps.
const STEPS: u64 = 160;

/// Tiny deterministic xorshift so the test needs no RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

type EdgeMap = BTreeMap<(u32, u32), Weight>;

/// Materialize a snapshot's full edge set for exact comparison.
fn snapshot_edges(pg: &PartitionedGraph) -> EdgeMap {
    let g = pg.graph();
    let mut map = BTreeMap::new();
    for v in 0..g.num_vertices() as u32 {
        for (t, w) in g.out_edges(v) {
            map.insert((v, t), w);
        }
    }
    map
}

/// From-scratch Dijkstra over an arbitrary adjacency closure.
fn dijkstra(n: usize, source: u32, neighbors: impl Fn(u32) -> Vec<(u32, Weight)>) -> Vec<Dist> {
    let mut dist = vec![INF_DIST; n];
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0 as Dist, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (t, w) in neighbors(v) {
            let nd = d + w as Dist;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(Reverse((nd, t)));
            }
        }
    }
    dist
}

#[test]
fn concurrent_readers_always_see_their_pinned_epoch() {
    let g = gen::erdos_renyi(N, 300, 91).with_random_weights(8, 91);
    let pg = Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Chunked, 4),
    ));
    let store = Arc::new(VersionedGraph::new(pg));
    // history[v] = the exact edge map of version v. Pushed *before* version
    // v publishes, so any pinnable epoch already has its ground truth.
    let history: Arc<RwLock<Vec<EdgeMap>>> =
        Arc::new(RwLock::new(vec![snapshot_edges(&store.current())]));
    let stop = Arc::new(AtomicBool::new(false));
    let verified = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for reader in 0..3u64 {
            let store = Arc::clone(&store);
            let history = Arc::clone(&history);
            let stop = Arc::clone(&stop);
            let verified = Arc::clone(&verified);
            scope.spawn(move || {
                let mut checks = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let guard = store.pin();
                    let epoch = guard.epoch();
                    let expect = history.read().unwrap()[epoch as usize].clone();
                    let seen = snapshot_edges(guard.graph());
                    assert_eq!(seen, expect, "reader {reader}: edges diverged at epoch {epoch}");
                    let source = ((epoch + reader * 17) % N as u64) as u32;
                    let csr = guard.graph().graph();
                    let via_snapshot =
                        dijkstra(N, source, |v| csr.out_edges(v).collect::<Vec<_>>());
                    let via_mirror = dijkstra(N, source, |v| {
                        expect.range((v, 0)..=(v, u32::MAX)).map(|(&(_, t), &w)| (t, w)).collect()
                    });
                    assert_eq!(
                        via_snapshot, via_mirror,
                        "reader {reader}: dijkstra diverged at epoch {epoch} source {source}"
                    );
                    checks += 1;
                    drop(guard);
                }
                verified.fetch_add(checks, Ordering::AcqRel);
            });
        }

        // The writer: random mutation batches folded under the live readers.
        let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
        let mut mirror = history.read().unwrap()[0].clone();
        for step in 0..STEPS {
            for _ in 0..=(rng.next() % 3) {
                let u = (rng.next() % N as u64) as u32;
                let mut v = (rng.next() % N as u64) as u32;
                if u == v {
                    v = (v + 1) % N as u32;
                }
                match rng.next() % 3 {
                    0 => {
                        let w = (1 + rng.next() % 8) as Weight;
                        store.insert_edge(u, v, w).unwrap();
                        mirror.insert((u, v), w);
                    }
                    1 => {
                        store.delete_edge(u, v).unwrap();
                        mirror.remove(&(u, v));
                    }
                    _ => {
                        // Upsert semantics: an update to an absent edge
                        // materializes it, same as the fold's net effect.
                        let w = (1 + rng.next() % 8) as Weight;
                        store.update_weight(u, v, w).unwrap();
                        mirror.insert((u, v), w);
                    }
                }
            }
            history.write().unwrap().push(mirror.clone());
            store.advance().expect("a non-empty log must fold");
            assert_eq!(store.version(), step + 1, "one advance, one version");
        }
        stop.store(true, Ordering::Release);
    });

    assert!(verified.load(Ordering::Acquire) > 0, "readers must have verified pins");
    assert_eq!(store.epochs().epochs_advanced(), STEPS);
    // With every guard dropped, nothing old stays pinned.
    assert_eq!(store.epochs().oldest_pinned_epoch_lag(), 0);
}

#[test]
fn retired_snapshots_reclaim_once_the_last_reader_unpins() {
    let g = gen::erdos_renyi(32, 140, 7).with_random_weights(8, 7);
    let pg = Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Chunked, 4),
    ));
    let store = VersionedGraph::new(pg);

    let guard = store.pin();
    let weak = Arc::downgrade(&guard.graph_arc());
    for i in 0..5u32 {
        store.insert_edge(i, i + 8, 3).unwrap();
        store.advance().unwrap();
    }
    assert!(weak.upgrade().is_some(), "a pinned epoch survives any number of advances");
    assert_eq!(store.epochs().oldest_pinned_epoch_lag(), 5);
    // Versions 1..4 were retired unpinned: reclaimed at the advance that
    // superseded them, without waiting for anyone.
    assert!(store.epochs().snapshots_reclaimed() >= 4, "unpinned epochs reclaim eagerly");

    drop(guard);
    assert!(weak.upgrade().is_none(), "the last unpin frees the retired snapshot");
    assert_eq!(store.epochs().oldest_pinned_epoch_lag(), 0);
}
