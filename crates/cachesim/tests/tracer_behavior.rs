//! Behavioural tests for fg-cachesim as a black box: LLC eviction order,
//! synthetic address mapping, and tracer access counts replayed over a
//! hand-built tiny graph (the module-level unit tests cover the same types
//! in isolation; these pin the *composed* behaviour an engine relies on).

use fg_cachesim::address::layout::{element_addr, region_ids};
use fg_cachesim::{AccessKind, AddressSpace, CacheConfig, CacheSim, GraphAccessTracer};
use fg_graph::{CsrGraph, GraphBuilder};

/// A 6-vertex graph with hand-picked degrees:
///
/// ```text
/// 0 → 1, 2, 3      (degree 3)
/// 1 → 2            (degree 1)
/// 2 → 3, 4, 5, 0   (degree 4)
/// 3 —              (degree 0)
/// 4 → 5            (degree 1)
/// 5 → 0            (degree 1)
/// ```
fn tiny_graph() -> CsrGraph {
    let mut b = GraphBuilder::new(6);
    for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (2, 4), (2, 5), (2, 0), (4, 5), (5, 0)] {
        b.add_edge(u, v, 1);
    }
    b.build()
}

/// Full LRU eviction order of one set: lines leave in exactly the order
/// they became least-recently-used, with interleaved touches reordering
/// the queue.
#[test]
fn llc_eviction_follows_exact_lru_order() {
    // Single-set cache: 4 ways × 64-byte lines = 256 bytes.
    let config = CacheConfig { capacity_bytes: 256, line_bytes: 64, associativity: 4 };
    let mut sim = CacheSim::new(config);
    let line = |i: u64| i * 64;

    // Fill: LRU order is now 0, 1, 2, 3.
    for i in 0..4 {
        assert!(!sim.access(line(i), AccessKind::Read), "cold line {i} must miss");
    }
    // Touch 1 then 0: LRU order becomes 2, 3, 1, 0.
    assert!(sim.access(line(1), AccessKind::Read));
    assert!(sim.access(line(0), AccessKind::Read));
    // Two new lines evict exactly 2 then 3.
    assert!(!sim.access(line(4), AccessKind::Read)); // evicts 2
    assert!(!sim.access(line(5), AccessKind::Read)); // evicts 3
    assert!(!sim.access(line(2), AccessKind::Read), "2 was evicted first");
    // That re-access of 2 evicted 1 (LRU after 4 and 5 allocated, 0/4/5 more
    // recent than 1... order now was 1, 0, 4, 5 → 2 evicted 1).
    assert!(!sim.access(line(1), AccessKind::Read), "1 was the next eviction");
    // 0 survived every round so far? order after the last two misses:
    // 0, 4, 5, 2 → 1's allocation evicted 0.
    assert!(!sim.access(line(0), AccessKind::Read), "0 was finally evicted too");
    let stats = sim.stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 9);
}

/// Address mapping invariants the engines rely on: regions never overlap,
/// distinct queries' state regions never share a cache line, and the
/// stateless `layout` helper agrees with its documented 1 GiB striding.
#[test]
fn address_mapping_keeps_logical_arrays_disjoint() {
    let space = AddressSpace::new();
    let offsets = space.region(0, 1_000, 8);
    let adjacency = space.region(1, 10_000, 8);
    let state = space.region(2, 1_000, 8);
    for (a, b) in [(&offsets, &adjacency), (&adjacency, &state), (&offsets, &state)] {
        assert!(
            a.base() + a.size_bytes() <= b.base() || b.base() + b.size_bytes() <= a.base(),
            "regions overlap"
        );
    }
    // Element addresses stride by the element size within a region.
    assert_eq!(adjacency.element_addr(7) - adjacency.element_addr(0), 56);

    // The stateless layout helper: region r owns [r * 1 GiB, (r+1) * 1 GiB).
    let gib = 1u64 << 30;
    assert_eq!(element_addr(region_ids::CSR_OFFSETS, 0, 8), region_ids::CSR_OFFSETS * gib);
    assert_eq!(element_addr(region_ids::CSR_ADJACENCY, 3, 8), region_ids::CSR_ADJACENCY * gib + 24);
    // Two queries' state arrays live a whole region apart, so no vertex of
    // query q shares a line with any vertex of query q+1.
    let q0_last = element_addr(region_ids::QUERY_STATE_BASE, (gib / 8) - 1, 8);
    let q1_first = element_addr(region_ids::QUERY_STATE_BASE + 1, 0, 8);
    assert!(q0_last < q1_first);
    assert_ne!(q0_last / 64, q1_first / 64);
}

/// Replay a one-query "visit every vertex once" pass over the tiny graph
/// through the tracer — the exact call pattern the engines issue — and
/// check the access count analytically: per processed vertex with degree
/// d > 0, 1 offsets access + ⌈8d / 64⌉ adjacency-line accesses + 1 state
/// write + d state reads; for d = 0, 1 offsets access + 1 state read.
#[test]
fn tracer_counts_match_hand_computed_accesses_on_tiny_graph() {
    let graph = tiny_graph();
    let tracer = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));

    let mut expected = 0u64;
    for v in 0..graph.num_vertices() as u32 {
        let degree = graph.out_degree(v);
        tracer.adjacency_scan(graph.adjacency_offset(v), degree);
        if degree > 0 {
            tracer.state_write(0, v as u64);
            let ids: Vec<u64> = graph.out_neighbors(v).iter().map(|&t| t as u64).collect();
            tracer.state_read_batch(0, &ids);
            let offset_bytes = graph.adjacency_offset(v) * 8;
            let lines = (offset_bytes + degree as u64 * 8).div_ceil(64) - offset_bytes / 64;
            expected += 1 + lines + 1 + degree as u64;
        } else {
            tracer.state_read(0, v as u64);
            expected += 2;
        }
    }
    assert_eq!(tracer.stats().accesses, expected);

    // Degrees as designed: 3 + 1 + 4 + 0 + 1 + 1 = 10 edges.
    assert_eq!(graph.num_edges(), 10);
    // All six state elements (one per vertex) fit one 64-byte line, so the
    // state region contributes exactly one miss; every other state access
    // hits. Adjacency/offset regions are disjoint from it by construction.
    let stats = tracer.stats();
    assert!(stats.misses < stats.accesses, "warm lines must produce hits");
    assert!(stats.loads > 0 && stats.accesses >= stats.loads);
}

/// Two queries replaying the same traversal double the accesses but keep
/// their state misses independent (disjoint per-query regions) while
/// sharing the graph's adjacency lines.
#[test]
fn second_query_shares_graph_lines_but_not_state_lines() {
    let graph = tiny_graph();
    let tracer = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));

    let replay = |query: usize| {
        for v in 0..graph.num_vertices() as u32 {
            let degree = graph.out_degree(v);
            tracer.adjacency_scan(graph.adjacency_offset(v), degree);
            if degree > 0 {
                tracer.state_write(query, v as u64);
                let ids: Vec<u64> = graph.out_neighbors(v).iter().map(|&t| t as u64).collect();
                tracer.state_read_batch(query, &ids);
            } else {
                tracer.state_read(query, v as u64);
            }
        }
    };
    replay(0);
    let after_first = tracer.stats();
    replay(1);
    let after_second = tracer.stats();

    assert_eq!(after_second.accesses, 2 * after_first.accesses);
    // Query 1's graph accesses all hit (same CSR lines, still resident);
    // only its own state region misses — and that is one fresh line.
    assert_eq!(after_second.misses, after_first.misses + 1);
}
