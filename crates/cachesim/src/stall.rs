//! Memory-stall cost model.
//!
//! Figure 13 of the paper breaks the time spent in the memory units into
//! stalled and not-stalled portions. We approximate the same breakdown with a
//! two-level latency model: an LLC hit costs [`StallModel::hit_cycles`], an LLC
//! miss costs [`StallModel::miss_cycles`] (a DRAM access). Cycles beyond the
//! hit cost are counted as stalled.

use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;

/// Latency parameters of the stall model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallModel {
    /// Cycles for an access served by the LLC.
    pub hit_cycles: u64,
    /// Cycles for an access that misses to DRAM.
    pub miss_cycles: u64,
}

impl Default for StallModel {
    fn default() -> Self {
        // Typical figures for a Skylake-class server part: ~40 cycles LLC,
        // ~200 cycles DRAM.
        StallModel { hit_cycles: 40, miss_cycles: 200 }
    }
}

/// Result of applying a [`StallModel`] to a set of cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Cycles spent in memory units that were unavoidable (hit latency for
    /// every access).
    pub busy_cycles: u64,
    /// Extra cycles attributable to LLC misses (the "stalled" portion).
    pub stalled_cycles: u64,
}

impl StallBreakdown {
    /// Total memory-unit cycles.
    pub fn total_cycles(&self) -> u64 {
        self.busy_cycles + self.stalled_cycles
    }

    /// Fraction of memory-unit time that was stalled, in `[0, 1]`.
    pub fn stalled_fraction(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.stalled_cycles as f64 / total as f64
        }
    }
}

impl StallModel {
    /// Apply the model to a set of cache counters.
    pub fn breakdown(&self, stats: &CacheStats) -> StallBreakdown {
        let busy = stats.accesses * self.hit_cycles;
        let stalled = stats.misses * self.miss_cycles.saturating_sub(self.hit_cycles);
        StallBreakdown { busy_cycles: busy, stalled_cycles: stalled }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(accesses: u64, misses: u64) -> CacheStats {
        CacheStats { accesses, hits: accesses - misses, misses, loads: accesses, stores: 0 }
    }

    #[test]
    fn no_misses_means_no_stalls() {
        let b = StallModel::default().breakdown(&stats(100, 0));
        assert_eq!(b.stalled_cycles, 0);
        assert_eq!(b.stalled_fraction(), 0.0);
        assert_eq!(b.busy_cycles, 100 * 40);
    }

    #[test]
    fn all_misses_is_mostly_stalled() {
        let b = StallModel::default().breakdown(&stats(100, 100));
        assert!(b.stalled_fraction() > 0.5, "{}", b.stalled_fraction());
        assert_eq!(b.total_cycles(), 100 * 40 + 100 * 160);
    }

    #[test]
    fn stall_fraction_monotone_in_miss_ratio() {
        let model = StallModel::default();
        let low = model.breakdown(&stats(1000, 100)).stalled_fraction();
        let high = model.breakdown(&stats(1000, 800)).stalled_fraction();
        assert!(high > low);
    }

    #[test]
    fn empty_stats_are_harmless() {
        let b = StallModel::default().breakdown(&CacheStats::default());
        assert_eq!(b.total_cycles(), 0);
        assert_eq!(b.stalled_fraction(), 0.0);
    }
}
