//! # fg-cachesim
//!
//! A software last-level-cache (LLC) simulator.
//!
//! The paper measures LLC loads, LLC misses, and memory-stall cycles with
//! hardware performance counters on a 13.75 MiB Xeon LLC. Hardware PMU access
//! is neither portable nor available in this reproduction environment, so every
//! engine in the workspace can instead be instrumented with a [`CacheSim`]: a
//! set-associative, LRU, shared cache model fed with the engines' *logical*
//! memory accesses (vertex property reads/writes and adjacency scans) mapped to
//! synthetic addresses by an [`AddressSpace`].
//!
//! The simulator reproduces the quantity the paper actually argues about — the
//! relative number of LLC misses between coordinated (ForkGraph) and
//! uncoordinated (t = 1 inter-query parallelism) access patterns — without
//! requiring the original hardware.
//!
//! A simple [`StallModel`] converts hit/miss counts into the memory-stall
//! breakdown of Figure 13.

pub mod address;
pub mod cache;
pub mod instrument;
pub mod stall;

pub use address::{AddressSpace, Region};
pub use cache::{AccessKind, CacheConfig, CacheSim, CacheStats, SharedCacheSim};
pub use instrument::GraphAccessTracer;
pub use stall::{StallBreakdown, StallModel};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_api_smoke_test() {
        let mut sim = CacheSim::new(CacheConfig::default());
        let space = AddressSpace::new();
        let region = space.region(0, 1024, 8);
        sim.access(region.element_addr(3), AccessKind::Read);
        sim.access(region.element_addr(3), AccessKind::Read);
        let stats = sim.stats();
        assert_eq!(stats.accesses, 2);
        assert_eq!(stats.misses, 1);
    }
}
