//! Graph-workload access tracer.
//!
//! A thin façade over [`SharedCacheSim`] that maps the *logical* accesses of a
//! graph engine (adjacency scans, per-query vertex-state reads/writes) to the
//! synthetic address layout of [`crate::address::layout`]. All engines in the
//! workspace — the baseline GPS reimplementations and ForkGraph itself — report
//! their accesses through this type, so their simulated LLC numbers are
//! directly comparable.
//!
//! When constructed with [`GraphAccessTracer::disabled`] every call is a no-op,
//! which keeps the tracer off the critical path of un-instrumented runs.

use crate::address::layout::{element_addr, region_ids};
use crate::cache::{AccessKind, CacheConfig, CacheStats, SharedCacheSim};

/// Traces the memory accesses of a graph engine into a shared simulated LLC.
#[derive(Clone, Debug, Default)]
pub struct GraphAccessTracer {
    cache: Option<SharedCacheSim>,
    line_bytes: u64,
}

impl GraphAccessTracer {
    /// A tracer that records into a fresh shared cache of the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        GraphAccessTracer {
            line_bytes: config.line_bytes as u64,
            cache: Some(SharedCacheSim::new(config)),
        }
    }

    /// A disabled tracer: every call is a no-op.
    pub fn disabled() -> Self {
        GraphAccessTracer { cache: None, line_bytes: 64 }
    }

    /// Whether tracing is active.
    pub fn is_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Record a scan of a vertex's adjacency list.
    ///
    /// `adjacency_offset` is the vertex's starting index in the CSR target
    /// array (see `CsrGraph::adjacency_offset`), `degree` the number of
    /// neighbours scanned. One access is issued per cache line covered, plus
    /// one access to the offsets array.
    #[inline]
    pub fn adjacency_scan(&self, adjacency_offset: u64, degree: usize) {
        if let Some(cache) = &self.cache {
            cache.access(
                element_addr(region_ids::CSR_OFFSETS, adjacency_offset, 8),
                AccessKind::Read,
            );
            if degree == 0 {
                return;
            }
            let start = element_addr(region_ids::CSR_ADJACENCY, adjacency_offset, 8);
            let bytes = degree as u64 * 8; // target id + weight
            let first = start / self.line_bytes;
            let last = (start + bytes - 1) / self.line_bytes;
            let mut addrs = Vec::with_capacity((last - first + 1) as usize);
            for line in first..=last {
                addrs.push(line * self.line_bytes);
            }
            cache.access_batch(&addrs, AccessKind::Read);
        }
    }

    /// Record a read of query `query`'s per-vertex state at `vertex`.
    #[inline]
    pub fn state_read(&self, query: usize, vertex: u64) {
        if let Some(cache) = &self.cache {
            cache.access(
                element_addr(region_ids::QUERY_STATE_BASE + query as u64, vertex, 8),
                AccessKind::Read,
            );
        }
    }

    /// Record a write of query `query`'s per-vertex state at `vertex`.
    #[inline]
    pub fn state_write(&self, query: usize, vertex: u64) {
        if let Some(cache) = &self.cache {
            cache.access(
                element_addr(region_ids::QUERY_STATE_BASE + query as u64, vertex, 8),
                AccessKind::Write,
            );
        }
    }

    /// Record a batch of state reads for one query (single lock acquisition).
    pub fn state_read_batch(&self, query: usize, vertices: &[u64]) {
        if let Some(cache) = &self.cache {
            let addrs: Vec<u64> = vertices
                .iter()
                .map(|&v| element_addr(region_ids::QUERY_STATE_BASE + query as u64, v, 8))
                .collect();
            cache.access_batch(&addrs, AccessKind::Read);
        }
    }

    /// Counters accumulated so far (zeroes when disabled).
    pub fn stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Reset the counters (resident lines preserved).
    pub fn reset_stats(&self) {
        if let Some(cache) = &self.cache {
            cache.reset_stats();
        }
    }

    /// Drop resident lines (counters preserved).
    pub fn flush(&self) {
        if let Some(cache) = &self.cache {
            cache.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = GraphAccessTracer::disabled();
        t.adjacency_scan(0, 100);
        t.state_read(0, 5);
        t.state_write(3, 5);
        assert!(!t.is_enabled());
        assert_eq!(t.stats().accesses, 0);
    }

    #[test]
    fn adjacency_scan_touches_one_line_per_64_bytes() {
        let t = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));
        t.adjacency_scan(0, 16); // 128 bytes → 2 lines + 1 offsets access
        assert_eq!(t.stats().accesses, 3);
        t.adjacency_scan(0, 0);
        assert_eq!(t.stats().accesses, 4); // offsets access only
    }

    #[test]
    fn repeated_state_access_hits_after_first_touch() {
        let t = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));
        t.state_write(2, 10);
        t.state_read(2, 10);
        t.state_read(2, 11); // same line (8-byte elements, 64-byte lines)
        let s = t.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn different_queries_use_disjoint_lines() {
        let t = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));
        t.state_read(0, 0);
        t.state_read(1, 0);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn batch_reads_match_individual_reads() {
        let a = GraphAccessTracer::new(CacheConfig::tiny(4 * 1024));
        let b = GraphAccessTracer::new(CacheConfig::tiny(4 * 1024));
        let vs: Vec<u64> = (0..100).collect();
        a.state_read_batch(0, &vs);
        for &v in &vs {
            b.state_read(0, v);
        }
        assert_eq!(a.stats().misses, b.stats().misses);
        assert_eq!(a.stats().accesses, b.stats().accesses);
    }

    #[test]
    fn reset_and_flush() {
        let t = GraphAccessTracer::new(CacheConfig::tiny(4 * 1024));
        t.state_read(0, 0);
        t.reset_stats();
        assert_eq!(t.stats().accesses, 0);
        t.state_read(0, 0); // still resident → hit
        assert_eq!(t.stats().hits, 1);
        t.flush();
        t.state_read(0, 0);
        assert_eq!(t.stats().misses, 1);
    }
}
