//! Graph-workload access tracer.
//!
//! A thin façade over [`SharedCacheSim`] that maps the *logical* accesses of a
//! graph engine (adjacency scans, per-query vertex-state reads/writes) to the
//! synthetic address layout of [`crate::address::layout`]. All engines in the
//! workspace — the baseline GPS reimplementations and ForkGraph itself — report
//! their accesses through this type, so their simulated LLC numbers are
//! directly comparable.
//!
//! When constructed with [`GraphAccessTracer::disabled`] every call is a no-op,
//! which keeps the tracer off the critical path of un-instrumented runs.

use crate::address::layout::{element_addr, region_ids};
use crate::cache::{AccessKind, CacheConfig, CacheStats, SharedCacheSim};

/// Per-partition slot stride inside the compressed-payload region: an
/// LLC-sized partition's encoded payload fits comfortably in 16 MiB.
const PARTITION_SLOT: u64 = 16 << 20;

/// Byte offset of the payload bytes within a partition's slot; the first
/// 8 MiB of the slot model the per-partition offsets array.
const PAYLOAD_SUB_OFFSET: u64 = 8 << 20;

/// Traces the memory accesses of a graph engine into a shared simulated LLC.
#[derive(Clone, Debug, Default)]
pub struct GraphAccessTracer {
    cache: Option<SharedCacheSim>,
    line_bytes: u64,
}

impl GraphAccessTracer {
    /// A tracer that records into a fresh shared cache of the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        GraphAccessTracer {
            line_bytes: config.line_bytes as u64,
            cache: Some(SharedCacheSim::new(config)),
        }
    }

    /// A disabled tracer: every call is a no-op.
    pub fn disabled() -> Self {
        GraphAccessTracer { cache: None, line_bytes: 64 }
    }

    /// Whether tracing is active.
    pub fn is_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Record a scan of a vertex's adjacency list.
    ///
    /// `adjacency_offset` is the vertex's starting index in the CSR target
    /// array (see `CsrGraph::adjacency_offset`), `degree` the number of
    /// neighbours scanned. One access is issued per cache line covered, plus
    /// one access to the offsets array.
    #[inline]
    pub fn adjacency_scan(&self, adjacency_offset: u64, degree: usize) {
        if let Some(cache) = &self.cache {
            cache.access(
                element_addr(region_ids::CSR_OFFSETS, adjacency_offset, 8),
                AccessKind::Read,
            );
            if degree == 0 {
                return;
            }
            let start = element_addr(region_ids::CSR_ADJACENCY, adjacency_offset, 8);
            let bytes = degree as u64 * 8; // target id + weight
            let first = start / self.line_bytes;
            let last = (start + bytes - 1) / self.line_bytes;
            let mut addrs = Vec::with_capacity((last - first + 1) as usize);
            for line in first..=last {
                addrs.push(line * self.line_bytes);
            }
            cache.access_batch(&addrs, AccessKind::Read);
        }
    }

    /// Record a decode scan of one vertex's compressed adjacency payload.
    ///
    /// `partition` selects a fixed-stride slot inside the
    /// [`region_ids::COMPRESSED_PAYLOAD`] region (encoded payloads of distinct
    /// partitions never share a line), `vertex` indexes the per-partition
    /// offsets entry consulted before the scan, and `[start_byte, end_byte)`
    /// is the vertex's encoded byte range within the partition payload
    /// (`AdjacencyView::decode_byte_range` in `fg-graph`). One access is
    /// issued per cache line covered, plus one for the offsets entry — the
    /// compressed analogue of [`Self::adjacency_scan`].
    #[inline]
    pub fn compressed_scan(&self, partition: u64, vertex: u64, start_byte: u64, end_byte: u64) {
        if let Some(cache) = &self.cache {
            let slot =
                element_addr(region_ids::COMPRESSED_PAYLOAD, 0, 1) + partition * PARTITION_SLOT;
            // Offsets entry (two adjacent u32s; one line).
            cache.access(slot + vertex * 4, AccessKind::Read);
            if end_byte <= start_byte {
                return;
            }
            let base = slot + PAYLOAD_SUB_OFFSET;
            let first = (base + start_byte) / self.line_bytes;
            let last = (base + end_byte - 1) / self.line_bytes;
            let mut addrs = Vec::with_capacity((last - first + 1) as usize);
            for line in first..=last {
                addrs.push(line * self.line_bytes);
            }
            cache.access_batch(&addrs, AccessKind::Read);
        }
    }

    /// Record a read of query `query`'s per-vertex state at `vertex`.
    #[inline]
    pub fn state_read(&self, query: usize, vertex: u64) {
        if let Some(cache) = &self.cache {
            cache.access(
                element_addr(region_ids::QUERY_STATE_BASE + query as u64, vertex, 8),
                AccessKind::Read,
            );
        }
    }

    /// Record a write of query `query`'s per-vertex state at `vertex`.
    #[inline]
    pub fn state_write(&self, query: usize, vertex: u64) {
        if let Some(cache) = &self.cache {
            cache.access(
                element_addr(region_ids::QUERY_STATE_BASE + query as u64, vertex, 8),
                AccessKind::Write,
            );
        }
    }

    /// Record a batch of state reads for one query (single lock acquisition).
    pub fn state_read_batch(&self, query: usize, vertices: &[u64]) {
        if let Some(cache) = &self.cache {
            let addrs: Vec<u64> = vertices
                .iter()
                .map(|&v| element_addr(region_ids::QUERY_STATE_BASE + query as u64, v, 8))
                .collect();
            cache.access_batch(&addrs, AccessKind::Read);
        }
    }

    /// Counters accumulated so far (zeroes when disabled).
    pub fn stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Reset the counters (resident lines preserved).
    pub fn reset_stats(&self) {
        if let Some(cache) = &self.cache {
            cache.reset_stats();
        }
    }

    /// Drop resident lines (counters preserved).
    pub fn flush(&self) {
        if let Some(cache) = &self.cache {
            cache.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = GraphAccessTracer::disabled();
        t.adjacency_scan(0, 100);
        t.state_read(0, 5);
        t.state_write(3, 5);
        assert!(!t.is_enabled());
        assert_eq!(t.stats().accesses, 0);
    }

    #[test]
    fn adjacency_scan_touches_one_line_per_64_bytes() {
        let t = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));
        t.adjacency_scan(0, 16); // 128 bytes → 2 lines + 1 offsets access
        assert_eq!(t.stats().accesses, 3);
        t.adjacency_scan(0, 0);
        assert_eq!(t.stats().accesses, 4); // offsets access only
    }

    #[test]
    fn compressed_scan_touches_fewer_lines_than_raw_for_the_same_degree() {
        let raw = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));
        let comp = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));
        // 32 neighbours: raw streams 32 × 8 B = 4 lines (+1 offsets access);
        // at ~2 encoded bytes per edge the compressed range covers 1–2 lines.
        raw.adjacency_scan(0, 32);
        comp.compressed_scan(0, 0, 0, 64);
        assert!(comp.stats().accesses < raw.stats().accesses);
        assert!(comp.stats().misses < raw.stats().misses);
    }

    #[test]
    fn compressed_scans_of_distinct_partitions_use_disjoint_lines() {
        let t = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));
        t.compressed_scan(0, 0, 0, 8);
        t.compressed_scan(1, 0, 0, 8);
        // 2 offsets entries + 2 payload ranges, all on distinct lines.
        assert_eq!(t.stats().misses, 4);
        t.compressed_scan(0, 0, 0, 8); // resident now
        assert_eq!(t.stats().misses, 4);
    }

    #[test]
    fn empty_compressed_range_only_touches_the_offsets_entry() {
        let t = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));
        t.compressed_scan(0, 3, 10, 10);
        assert_eq!(t.stats().accesses, 1);
    }

    #[test]
    fn repeated_state_access_hits_after_first_touch() {
        let t = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));
        t.state_write(2, 10);
        t.state_read(2, 10);
        t.state_read(2, 11); // same line (8-byte elements, 64-byte lines)
        let s = t.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn different_queries_use_disjoint_lines() {
        let t = GraphAccessTracer::new(CacheConfig::tiny(64 * 1024));
        t.state_read(0, 0);
        t.state_read(1, 0);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn batch_reads_match_individual_reads() {
        let a = GraphAccessTracer::new(CacheConfig::tiny(4 * 1024));
        let b = GraphAccessTracer::new(CacheConfig::tiny(4 * 1024));
        let vs: Vec<u64> = (0..100).collect();
        a.state_read_batch(0, &vs);
        for &v in &vs {
            b.state_read(0, v);
        }
        assert_eq!(a.stats().misses, b.stats().misses);
        assert_eq!(a.stats().accesses, b.stats().accesses);
    }

    #[test]
    fn reset_and_flush() {
        let t = GraphAccessTracer::new(CacheConfig::tiny(4 * 1024));
        t.state_read(0, 0);
        t.reset_stats();
        assert_eq!(t.stats().accesses, 0);
        t.state_read(0, 0); // still resident → hit
        assert_eq!(t.stats().hits, 1);
        t.flush();
        t.state_read(0, 0);
        assert_eq!(t.stats().misses, 1);
    }
}
