//! Set-associative LRU cache model.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Whether an access reads or writes the line. The distinction only matters for
/// reporting (the paper reports LLC *loads*); both allocate the line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Geometry of the simulated cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// Simulated LLC scaled to the synthetic datasets (2 MiB, 64-byte lines,
    /// 16-way). The paper's machine had a 13.75 MiB LLC; see DESIGN.md §5.
    pub fn scaled_llc() -> Self {
        CacheConfig { capacity_bytes: 2 * 1024 * 1024, line_bytes: 64, associativity: 16 }
    }

    /// The paper's Xeon W-2155 LLC (13.75 MiB, 64-byte lines, 11-way).
    pub fn xeon_w2155_llc() -> Self {
        CacheConfig {
            capacity_bytes: 13 * 1024 * 1024 + 768 * 1024,
            line_bytes: 64,
            associativity: 11,
        }
    }

    /// A tiny cache used in unit tests.
    pub fn tiny(capacity_bytes: usize) -> Self {
        CacheConfig { capacity_bytes, line_bytes: 64, associativity: 4 }
    }

    /// Number of sets implied by the geometry (at least 1).
    pub fn num_sets(&self) -> usize {
        (self.capacity_bytes / (self.line_bytes * self.associativity)).max(1)
    }

    /// Number of lines the cache can hold.
    pub fn num_lines(&self) -> usize {
        self.num_sets() * self.associativity
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::scaled_llc()
    }
}

/// Counters accumulated by the simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and allocated a line).
    pub misses: u64,
    /// Read accesses (the paper's "LLC loads").
    pub loads: u64,
    /// Write accesses.
    pub stores: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; 0 for an untouched cache.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Merge another set of counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.loads += other.loads;
        self.stores += other.stores;
    }
}

/// A set-associative, LRU, write-allocate cache simulator.
///
/// Addresses are synthetic (see [`crate::AddressSpace`]); only the line index
/// derived from the address matters.
#[derive(Clone, Debug)]
pub struct CacheSim {
    config: CacheConfig,
    /// Per-set list of resident line tags, least-recently-used first.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Create an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![Vec::with_capacity(config.associativity); config.num_sets()];
        CacheSim { config, sets, stats: CacheStats::default() }
    }

    /// Geometry of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Simulate one access. Returns `true` on a hit.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> bool {
        self.stats.accesses += 1;
        match kind {
            AccessKind::Read => self.stats.loads += 1,
            AccessKind::Write => self.stats.stores += 1,
        }
        let line = addr / self.config.line_bytes as u64;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Hit: move to the most-recently-used position.
            let tag = set.remove(pos);
            set.push(tag);
            self.stats.hits += 1;
            true
        } else {
            // Miss: allocate, evicting the LRU line if the set is full.
            if set.len() == self.config.associativity {
                set.remove(0);
            }
            set.push(line);
            self.stats.misses += 1;
            false
        }
    }

    /// Simulate a sequential scan of `bytes` bytes starting at `addr`
    /// (one access per cache line touched).
    pub fn access_range(&mut self, addr: u64, bytes: usize, kind: AccessKind) {
        if bytes == 0 {
            return;
        }
        let line_bytes = self.config.line_bytes as u64;
        let first = addr / line_bytes;
        let last = (addr + bytes as u64 - 1) / line_bytes;
        for line in first..=last {
            self.access(line * line_bytes, kind);
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Drop all resident lines but keep the counters.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Reset the counters but keep the resident lines.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

/// A thread-safe shared LLC: all worker threads of an engine funnel their
/// accesses into the same cache state, modelling the *shared* last-level cache
/// whose thrashing the paper studies.
#[derive(Clone, Debug)]
pub struct SharedCacheSim {
    inner: Arc<Mutex<CacheSim>>,
}

impl SharedCacheSim {
    /// Create a shared cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        SharedCacheSim { inner: Arc::new(Mutex::new(CacheSim::new(config))) }
    }

    /// Simulate one access from any thread.
    pub fn access(&self, addr: u64, kind: AccessKind) -> bool {
        self.inner.lock().access(addr, kind)
    }

    /// Simulate a sequential range scan from any thread.
    pub fn access_range(&self, addr: u64, bytes: usize, kind: AccessKind) {
        self.inner.lock().access_range(addr, bytes, kind)
    }

    /// Batched access: one lock acquisition for a whole slice of addresses.
    /// Engines use this to keep simulation overhead off the critical path.
    pub fn access_batch(&self, addrs: &[u64], kind: AccessKind) {
        let mut guard = self.inner.lock();
        for &a in addrs {
            guard.access(a, kind);
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats()
    }

    /// Drop resident lines (counters preserved).
    pub fn flush(&self) {
        self.inner.lock().flush()
    }

    /// Reset counters (resident lines preserved).
    pub fn reset_stats(&self) {
        self.inner.lock().reset_stats()
    }

    /// Geometry of the shared cache.
    pub fn config(&self) -> CacheConfig {
        *self.inner.lock().config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_math() {
        let c = CacheConfig { capacity_bytes: 64 * 1024, line_bytes: 64, associativity: 4 };
        assert_eq!(c.num_sets(), 256);
        assert_eq!(c.num_lines(), 1024);
        assert!(CacheConfig::xeon_w2155_llc().num_lines() > CacheConfig::scaled_llc().num_lines());
    }

    #[test]
    fn repeated_access_hits() {
        let mut sim = CacheSim::new(CacheConfig::tiny(4096));
        assert!(!sim.access(0, AccessKind::Read));
        for _ in 0..10 {
            assert!(sim.access(8, AccessKind::Read)); // same line as addr 0
        }
        assert_eq!(sim.stats().misses, 1);
        assert_eq!(sim.stats().hits, 10);
    }

    #[test]
    fn distinct_lines_miss() {
        let mut sim = CacheSim::new(CacheConfig::tiny(4096));
        for i in 0..10u64 {
            assert!(!sim.access(i * 64, AccessKind::Read));
        }
        assert_eq!(sim.stats().misses, 10);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        // 1 set, 4 ways: capacity 256 bytes with 64-byte lines.
        let config = CacheConfig { capacity_bytes: 256, line_bytes: 64, associativity: 4 };
        let mut sim = CacheSim::new(config);
        for i in 0..4u64 {
            sim.access(i * 64, AccessKind::Read);
        }
        // Touch line 0 to make it most recently used, then insert a 5th line.
        assert!(sim.access(0, AccessKind::Read));
        sim.access(4 * 64, AccessKind::Read);
        // Line 1 (the LRU) must have been evicted; line 0 must still be present.
        assert!(sim.access(0, AccessKind::Read));
        assert!(!sim.access(64, AccessKind::Read));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let config = CacheConfig::tiny(4 * 1024); // 64 lines
        let mut sim = CacheSim::new(config);
        // Cyclic scan over 128 lines: with LRU every access misses.
        for _ in 0..4 {
            for i in 0..128u64 {
                sim.access(i * 64, AccessKind::Read);
            }
        }
        assert_eq!(sim.stats().hits, 0);
        // Working set that fits: only compulsory misses.
        let mut small = CacheSim::new(config);
        for _ in 0..4 {
            for i in 0..32u64 {
                small.access(i * 64, AccessKind::Read);
            }
        }
        assert_eq!(small.stats().misses, 32);
    }

    #[test]
    fn access_range_touches_every_line_once() {
        let mut sim = CacheSim::new(CacheConfig::tiny(64 * 1024));
        sim.access_range(10, 300, AccessKind::Read);
        // Bytes 10..310 span lines 0..=4 → 5 accesses.
        assert_eq!(sim.stats().accesses, 5);
        sim.access_range(0, 0, AccessKind::Write);
        assert_eq!(sim.stats().accesses, 5);
    }

    #[test]
    fn loads_and_stores_counted_separately() {
        let mut sim = CacheSim::new(CacheConfig::tiny(4096));
        sim.access(0, AccessKind::Read);
        sim.access(64, AccessKind::Write);
        sim.access(128, AccessKind::Write);
        let s = sim.stats();
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 2);
        assert_eq!(s.accesses, 3);
    }

    #[test]
    fn flush_and_reset() {
        let mut sim = CacheSim::new(CacheConfig::tiny(4096));
        sim.access(0, AccessKind::Read);
        assert_eq!(sim.resident_lines(), 1);
        sim.flush();
        assert_eq!(sim.resident_lines(), 0);
        assert_eq!(sim.stats().accesses, 1);
        sim.reset_stats();
        assert_eq!(sim.stats().accesses, 0);
    }

    #[test]
    fn shared_cache_accumulates_across_threads() {
        let shared = SharedCacheSim::new(CacheConfig::tiny(64 * 1024));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let shared = shared.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        shared.access((t * 100 + i) * 64, AccessKind::Read);
                    }
                });
            }
        });
        assert_eq!(shared.stats().accesses, 400);
        assert_eq!(shared.stats().misses, 400);
    }

    #[test]
    fn stats_merge() {
        let mut a = CacheStats { accesses: 10, hits: 6, misses: 4, loads: 9, stores: 1 };
        let b = CacheStats { accesses: 5, hits: 5, misses: 0, loads: 0, stores: 5 };
        a.merge(&b);
        assert_eq!(a.accesses, 15);
        assert_eq!(a.hits, 11);
        assert!((a.miss_ratio() - 4.0 / 15.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
