//! Synthetic address spaces.
//!
//! Engines do not feed real pointers to the cache simulator (real addresses
//! would mix simulator state with the measured working set). Instead each
//! logical array — the CSR adjacency, one per-query distance array, a frontier
//! bitmap, … — is registered as a [`Region`] of an [`AddressSpace`], and the
//! engine converts `(region, element index)` pairs into disjoint synthetic
//! addresses.

/// A contiguous synthetic memory region for one logical array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    base: u64,
    element_bytes: u64,
    num_elements: u64,
}

impl Region {
    /// Synthetic base address of this region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size of the region in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.element_bytes * self.num_elements
    }

    /// Address of element `index` (indices past the declared length extend the
    /// region rather than wrapping, which keeps accidental overlaps impossible
    /// because regions are spaced generously apart).
    #[inline]
    pub fn element_addr(&self, index: u64) -> u64 {
        self.base + index * self.element_bytes
    }

    /// Address of a byte offset within the region.
    #[inline]
    pub fn byte_addr(&self, offset: u64) -> u64 {
        self.base + offset
    }
}

/// Allocates non-overlapping [`Region`]s.
///
/// Regions are aligned to a large power-of-two stride so that distinct logical
/// arrays never share a cache line.
#[derive(Debug, Default)]
pub struct AddressSpace {
    next_base: std::cell::Cell<u64>,
}

/// Gap between consecutive regions: 1 GiB of synthetic address space, far
/// larger than any scaled dataset's array.
const REGION_ALIGN: u64 = 1 << 30;

impl AddressSpace {
    /// Create an empty address space.
    pub fn new() -> Self {
        AddressSpace { next_base: std::cell::Cell::new(REGION_ALIGN) }
    }

    /// Allocate a region for an array of `num_elements` elements of
    /// `element_bytes` each. The `tag` is only a debugging aid and does not
    /// affect the layout.
    pub fn region(&self, tag: u64, num_elements: u64, element_bytes: u64) -> Region {
        let _ = tag;
        let size = (num_elements * element_bytes).max(1);
        let base = self.next_base.get();
        let stride = size.div_ceil(REGION_ALIGN).max(1) * REGION_ALIGN;
        self.next_base.set(base + stride);
        Region { base, element_bytes: element_bytes.max(1), num_elements }
    }
}

/// Stateless helpers to derive deterministic synthetic addresses without an
/// [`AddressSpace`] instance; used when many threads need to agree on the same
/// layout with no shared allocator. Region `r` owns addresses
/// `[r * 1 GiB, (r+1) * 1 GiB)`, with multi-GiB arrays claiming subsequent
/// slots (callers must space their region ids accordingly).
pub mod layout {
    /// Well-known region ids used by the engines.
    pub mod region_ids {
        /// CSR offsets array.
        pub const CSR_OFFSETS: u64 = 1;
        /// CSR adjacency (targets + weights) array.
        pub const CSR_ADJACENCY: u64 = 2;
        /// Compressed (delta/varint) partition payloads; partitions claim
        /// fixed-stride slots inside this region (see
        /// `GraphAccessTracer::compressed_scan`).
        pub const COMPRESSED_PAYLOAD: u64 = 3;
        /// First per-query vertex-state region; query `q` uses `QUERY_STATE_BASE + q`.
        pub const QUERY_STATE_BASE: u64 = 64;
    }

    /// Address of `element` (of `element_bytes` bytes) inside region `region`.
    #[inline]
    pub fn element_addr(region: u64, element: u64, element_bytes: u64) -> u64 {
        region * (1 << 30) + element * element_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let space = AddressSpace::new();
        let a = space.region(0, 1000, 8);
        let b = space.region(1, 1000, 8);
        assert!(a.base() + a.size_bytes() <= b.base());
        assert_ne!(a.element_addr(999) / 64, b.element_addr(0) / 64);
    }

    #[test]
    fn large_regions_get_extra_space() {
        let space = AddressSpace::new();
        let big = space.region(0, 300_000_000, 8); // ~2.2 GiB
        let next = space.region(1, 10, 8);
        assert!(big.base() + big.size_bytes() <= next.base());
    }

    #[test]
    fn element_addresses_are_strided() {
        let space = AddressSpace::new();
        let r = space.region(0, 100, 4);
        assert_eq!(r.element_addr(1) - r.element_addr(0), 4);
        assert_eq!(r.byte_addr(10), r.base() + 10);
    }

    #[test]
    fn layout_helper_separates_regions() {
        use layout::{element_addr, region_ids};
        let a = element_addr(region_ids::CSR_ADJACENCY, 0, 4);
        let b = element_addr(region_ids::QUERY_STATE_BASE, 0, 8);
        assert!(b > a);
        assert_ne!(a / 64, b / 64);
        // Consecutive queries land in different regions.
        let q0 = element_addr(region_ids::QUERY_STATE_BASE, 5, 8);
        let q1 = element_addr(region_ids::QUERY_STATE_BASE + 1, 5, 8);
        assert!(q1 - q0 >= (1 << 30) - 64);
    }
}
