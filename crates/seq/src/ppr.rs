//! Push-based personalized PageRank (Andersen–Chung–Lang approximate PPR).
//!
//! This is the sequential PPR kernel used by the local-clustering / NCP
//! workload in the paper (reused from Shun et al., "Parallel Local Graph
//! Clustering"). Mass is pushed from vertices whose residual exceeds
//! `epsilon * degree`; the estimate vector converges to an ε-approximate PPR
//! vector with teleport probability `alpha`.

use std::collections::VecDeque;

use fg_graph::{CsrGraph, VertexId};

/// Parameters of the push-based PPR computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PprConfig {
    /// Teleport (restart) probability, typically 0.15.
    pub alpha: f64,
    /// Approximation threshold: push while some vertex has
    /// `residual[v] >= epsilon * degree(v)`.
    pub epsilon: f64,
    /// Hard cap on pushes, a safety valve for adversarial inputs
    /// (0 = unlimited).
    pub max_pushes: u64,
}

impl Default for PprConfig {
    fn default() -> Self {
        PprConfig { alpha: 0.15, epsilon: 1e-6, max_pushes: 0 }
    }
}

/// Result of a PPR computation.
#[derive(Clone, Debug, PartialEq)]
pub struct PprResult {
    /// Seed vertex.
    pub seed: VertexId,
    /// Sparse PPR estimates: `(vertex, estimate)` pairs, every estimate > 0.
    pub estimates: Vec<(VertexId, f64)>,
    /// Residual mass left unpushed (diagnostic; small when converged).
    pub total_residual: f64,
    /// Number of pushes performed.
    pub pushes: u64,
    /// Number of edges touched while pushing.
    pub edges_processed: u64,
}

impl PprResult {
    /// Total probability mass accounted for (estimates + residual); ≈ 1.
    pub fn total_mass(&self) -> f64 {
        self.estimates.iter().map(|(_, p)| p).sum::<f64>() + self.total_residual
    }

    /// Estimates as a dense vector of length `n`.
    pub fn dense(&self, n: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        for &(u, p) in &self.estimates {
            v[u as usize] = p;
        }
        v
    }
}

/// Run push-based PPR from `seed`.
pub fn ppr_push(graph: &CsrGraph, seed: VertexId, config: &PprConfig) -> PprResult {
    let n = graph.num_vertices();
    let mut estimate = vec![0.0f64; n];
    let mut residual = vec![0.0f64; n];
    let mut in_queue = vec![false; n];
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    let mut pushes = 0u64;
    let mut edges_processed = 0u64;

    residual[seed as usize] = 1.0;
    queue.push_back(seed);
    in_queue[seed as usize] = true;

    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let deg = graph.out_degree(u).max(1) as f64;
        let r = residual[u as usize];
        if r < config.epsilon * deg {
            continue;
        }
        // Push: keep alpha fraction, spread (1-alpha)/2 to self, rest to
        // neighbours (lazy random walk formulation).
        estimate[u as usize] += config.alpha * r;
        let push_mass = (1.0 - config.alpha) * r;
        residual[u as usize] = push_mass / 2.0;
        let share = push_mass / 2.0 / deg;
        pushes += 1;
        if graph.out_degree(u) == 0 {
            // Dangling vertex: the walk stays put.
            residual[u as usize] += push_mass / 2.0;
        } else {
            for &v in graph.out_neighbors(u) {
                edges_processed += 1;
                residual[v as usize] += share;
                let dv = graph.out_degree(v).max(1) as f64;
                if residual[v as usize] >= config.epsilon * dv && !in_queue[v as usize] {
                    queue.push_back(v);
                    in_queue[v as usize] = true;
                }
            }
        }
        // Re-enqueue u if it still exceeds its own threshold.
        if residual[u as usize] >= config.epsilon * deg && !in_queue[u as usize] {
            queue.push_back(u);
            in_queue[u as usize] = true;
        }
        if config.max_pushes > 0 && pushes >= config.max_pushes {
            break;
        }
    }

    let estimates: Vec<(VertexId, f64)> = estimate
        .iter()
        .enumerate()
        .filter(|(_, &p)| p > 0.0)
        .map(|(v, &p)| (v as VertexId, p))
        .collect();
    let total_residual: f64 = residual.iter().sum();
    PprResult { seed, estimates, total_residual, pushes, edges_processed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::gen;

    #[test]
    fn mass_is_conserved() {
        let g = gen::rmat(8, 6, 1);
        let r = ppr_push(&g, 3, &PprConfig::default());
        assert!((r.total_mass() - 1.0).abs() < 1e-9, "mass {}", r.total_mass());
    }

    #[test]
    fn seed_has_largest_estimate() {
        let g = gen::grid2d(12, 12, 0.0, 1);
        let seed = 40;
        let r = ppr_push(&g, seed, &PprConfig { epsilon: 1e-7, ..Default::default() });
        let best = r.estimates.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        assert_eq!(best.0, seed);
    }

    #[test]
    fn estimates_decay_with_distance_on_a_path() {
        let g = gen::path(50);
        let r = ppr_push(&g, 0, &PprConfig { epsilon: 1e-8, ..Default::default() });
        let dense = r.dense(50);
        assert!(dense[0] > dense[5]);
        assert!(dense[5] > dense[20]);
    }

    #[test]
    fn smaller_epsilon_means_more_work_and_less_residual() {
        let g = gen::rmat(9, 6, 2);
        let loose = ppr_push(&g, 1, &PprConfig { epsilon: 1e-3, ..Default::default() });
        let tight = ppr_push(&g, 1, &PprConfig { epsilon: 1e-6, ..Default::default() });
        assert!(tight.pushes >= loose.pushes);
        assert!(tight.total_residual <= loose.total_residual + 1e-12);
    }

    #[test]
    fn residual_threshold_is_respected_at_convergence() {
        let g = gen::rmat(8, 5, 7);
        let config = PprConfig { epsilon: 1e-4, ..Default::default() };
        let r = ppr_push(&g, 2, &config);
        // Recompute residuals densely and check the push condition no longer
        // holds anywhere. (Recompute by rerunning; cheaper: trust total bound.)
        assert!(r.total_residual < 1.0);
        assert!(r.pushes > 0);
    }

    #[test]
    fn dangling_vertices_do_not_lose_mass() {
        let mut b = fg_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 1);
        // vertices 1 and 2 are sinks
        let g = b.build();
        let r = ppr_push(&g, 0, &PprConfig { epsilon: 1e-5, ..Default::default() });
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_pushes_caps_work() {
        let g = gen::rmat(10, 8, 3);
        let r = ppr_push(&g, 0, &PprConfig { epsilon: 1e-9, max_pushes: 10, alpha: 0.15 });
        assert!(r.pushes <= 10);
    }
}
