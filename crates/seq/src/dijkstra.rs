//! Dijkstra's algorithm with a binary heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fg_graph::{CsrGraph, Dist, VertexId, INF_DIST};

/// Result of a single-source shortest-path computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsspResult {
    /// Source vertex.
    pub source: VertexId,
    /// `dist[v]` is the shortest distance from the source to `v`, or
    /// [`INF_DIST`] if unreachable.
    pub dist: Vec<Dist>,
    /// `parent[v]` is the predecessor of `v` on a shortest path (undefined for
    /// the source and unreachable vertices, where it equals `v` itself).
    pub parent: Vec<VertexId>,
    /// Number of edges relaxed.
    pub edges_processed: u64,
}

impl SsspResult {
    /// Number of vertices reachable from the source (including the source).
    pub fn num_reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d != INF_DIST).count()
    }
}

/// Run Dijkstra's algorithm from `source`.
///
/// Works on weighted and unweighted graphs (unweighted edges count as weight
/// 1, so the result equals BFS hop distances).
pub fn dijkstra(graph: &CsrGraph, source: VertexId) -> SsspResult {
    let n = graph.num_vertices();
    let mut dist = vec![INF_DIST; n];
    let mut parent: Vec<VertexId> = (0..n as VertexId).collect();
    let mut edges_processed = 0u64;
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (v, w) in graph.out_edges(u) {
            edges_processed += 1;
            let nd = d + w as Dist;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                parent[v as usize] = u;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    SsspResult { source, dist, parent, edges_processed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{gen, GraphBuilder};

    fn weighted_example() -> CsrGraph {
        // 0 --1-- 1 --1-- 2
        //  \------5------/ plus 2 -> 3 (2)
        let mut b = GraphBuilder::new(4);
        b.add_undirected_edge(0, 1, 1);
        b.add_undirected_edge(1, 2, 1);
        b.add_undirected_edge(0, 2, 5);
        b.add_undirected_edge(2, 3, 2);
        b.build()
    }

    #[test]
    fn shortest_paths_on_small_graph() {
        let g = weighted_example();
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 4]);
        assert_eq!(r.parent[3], 2);
        assert_eq!(r.parent[2], 1);
        assert_eq!(r.num_reached(), 4);
        assert!(r.edges_processed > 0);
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        // vertex 2, 3 disconnected
        let g = b.build();
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist[1], 1);
        assert_eq!(r.dist[2], INF_DIST);
        assert_eq!(r.num_reached(), 2);
    }

    #[test]
    fn unweighted_distances_equal_bfs_levels() {
        let g = gen::grid2d(15, 15, 0.0, 1);
        let r = dijkstra(&g, 0);
        let b = crate::bfs::bfs(&g, 0);
        for v in 0..g.num_vertices() {
            if b.level[v] == u32::MAX {
                assert_eq!(r.dist[v], INF_DIST);
            } else {
                assert_eq!(r.dist[v], b.level[v] as Dist);
            }
        }
    }

    #[test]
    fn parent_pointers_form_shortest_path_tree() {
        let g = gen::rmat(8, 6, 2).with_random_weights(9, 1);
        let r = dijkstra(&g, 3);
        for v in 0..g.num_vertices() as VertexId {
            if r.dist[v as usize] == INF_DIST || v == 3 {
                continue;
            }
            let p = r.parent[v as usize];
            let w = g.out_edges(p).find(|&(t, _)| t == v).map(|(_, w)| w).unwrap();
            assert_eq!(r.dist[p as usize] + w as Dist, r.dist[v as usize]);
        }
    }

    #[test]
    fn triangle_inequality_holds_over_all_edges() {
        let g = gen::erdos_renyi(300, 2000, 5).with_random_weights(8, 2);
        let r = dijkstra(&g, 0);
        for (u, v, w) in g.edges() {
            if r.dist[u as usize] != INF_DIST {
                assert!(r.dist[v as usize] <= r.dist[u as usize] + w as Dist);
            }
        }
    }

    #[test]
    fn source_distance_is_zero() {
        let g = gen::path(10);
        let r = dijkstra(&g, 7);
        assert_eq!(r.dist[7], 0);
        assert_eq!(r.source, 7);
    }
}
