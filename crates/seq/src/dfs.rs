//! Sequential depth-first search (iterative).

use fg_graph::{CsrGraph, VertexId};

/// Result of a DFS traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DfsResult {
    /// Source vertex.
    pub source: VertexId,
    /// `order[v]` is the discovery index of `v`, or `u32::MAX` if unreachable.
    pub order: Vec<u32>,
    /// Vertices in discovery order.
    pub preorder: Vec<VertexId>,
    /// Number of edges examined.
    pub edges_processed: u64,
}

impl DfsResult {
    /// Number of vertices reached.
    pub fn num_reached(&self) -> usize {
        self.preorder.len()
    }
}

/// Run an iterative DFS from `source`. Neighbours are visited in adjacency
/// order (the first neighbour is explored first).
pub fn dfs(graph: &CsrGraph, source: VertexId) -> DfsResult {
    let n = graph.num_vertices();
    let mut order = vec![u32::MAX; n];
    let mut preorder = Vec::new();
    let mut edges_processed = 0u64;
    // Stack of (vertex, next-neighbour-index).
    let mut stack: Vec<(VertexId, usize)> = Vec::new();
    order[source as usize] = 0;
    preorder.push(source);
    stack.push((source, 0));
    while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
        let neighbors = graph.out_neighbors(u);
        if *idx >= neighbors.len() {
            stack.pop();
            continue;
        }
        let v = neighbors[*idx];
        *idx += 1;
        edges_processed += 1;
        if order[v as usize] == u32::MAX {
            order[v as usize] = preorder.len() as u32;
            preorder.push(v);
            stack.push((v, 0));
        }
    }
    DfsResult { source, order, preorder, edges_processed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{gen, GraphBuilder};

    #[test]
    fn dfs_on_path_visits_in_order() {
        let g = gen::path(5);
        let r = dfs(&g, 0);
        assert_eq!(r.preorder, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.num_reached(), 5);
    }

    #[test]
    fn dfs_goes_deep_before_wide() {
        // 0 -> 1 -> 3 ; 0 -> 2
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(1, 3, 1);
        let g = b.build();
        let r = dfs(&g, 0);
        assert_eq!(r.preorder, vec![0, 1, 3, 2]);
        assert_eq!(r.order[3], 2);
        assert_eq!(r.order[2], 3);
    }

    #[test]
    fn dfs_and_bfs_reach_the_same_set() {
        let g = gen::rmat(8, 4, 9);
        let d = dfs(&g, 0);
        let b = crate::bfs::bfs(&g, 0);
        for v in 0..g.num_vertices() {
            assert_eq!(d.order[v] != u32::MAX, b.level[v] != u32::MAX, "vertex {v}");
        }
    }

    #[test]
    fn every_reached_vertex_has_unique_order() {
        let g = gen::grid2d(10, 10, 0.1, 2);
        let r = dfs(&g, 0);
        let mut orders: Vec<u32> = r.order.iter().copied().filter(|&o| o != u32::MAX).collect();
        orders.sort_unstable();
        for (i, o) in orders.iter().enumerate() {
            assert_eq!(*o, i as u32);
        }
    }

    #[test]
    fn edges_processed_bounded_by_reachable_out_degree() {
        let g = gen::erdos_renyi(100, 400, 1);
        let r = dfs(&g, 0);
        let bound: u64 = r.preorder.iter().map(|&v| g.out_degree(v) as u64).sum();
        assert!(r.edges_processed <= bound);
    }
}
