//! # fg-seq
//!
//! Work-efficient **sequential** graph algorithms.
//!
//! ForkGraph's intra-partition processing deliberately uses sequential
//! algorithms ("the fastest known sequential algorithms", Section 4.1 of the
//! paper) rather than the parallel kernels of Ligra/Gemini/GraphIt, because for
//! cache-resident partitions the parallelisation overhead and extra work of
//! parallel algorithms dominate. This crate provides those sequential kernels:
//!
//! * [`mod@dijkstra`] — Dijkstra's algorithm with a binary heap (the priority
//!   functor the paper reuses for SSSP/BC/LL),
//! * [`mod@bellman_ford`] — used as an oracle in tests and for the Appendix E
//!   atomic-free sanity check,
//! * [`mod@delta_stepping`] — sequential Δ-stepping, the basis of yielding
//!   heuristic 2,
//! * [`mod@bfs`] / [`mod@dfs`] — unweighted traversals,
//! * [`ppr`] — push-based personalized PageRank local clustering (Andersen–
//!   Chung–Lang, as used by Shun et al. for NCP),
//! * [`random_walk`] — bounded random walks.
//!
//! Every kernel reports the number of edges it processed so the evaluation can
//! reproduce the paper's work-efficiency comparisons (Figure 10b).

pub mod bellman_ford;
pub mod bfs;
pub mod delta_stepping;
pub mod dfs;
pub mod dijkstra;
pub mod ppr;
pub mod random_walk;

pub use bellman_ford::bellman_ford;
pub use bfs::{bfs, BfsResult};
pub use delta_stepping::delta_stepping;
pub use dfs::{dfs, DfsResult};
pub use dijkstra::{dijkstra, SsspResult};
pub use ppr::{ppr_push, PprConfig, PprResult};
pub use random_walk::{random_walks, RandomWalkConfig, RandomWalkResult};
