//! Sequential Δ-stepping shortest paths (Meyer & Sanders).
//!
//! Vertices are kept in buckets of width Δ; light edges (weight < Δ) are
//! relaxed within a bucket until it empties, heavy edges once per bucket. The
//! paper's yielding heuristic 2 restricts intra-partition processing to values
//! within `[dist_min, dist_min + Δ)`, exactly the bucket discipline implemented
//! here, so this kernel grounds both the heuristic and its default threshold.

use fg_graph::{CsrGraph, Dist, VertexId, INF_DIST};

/// Run Δ-stepping from `source` with bucket width `delta`.
/// Returns `(dist, edges_processed)`.
pub fn delta_stepping(graph: &CsrGraph, source: VertexId, delta: Dist) -> (Vec<Dist>, u64) {
    assert!(delta > 0, "delta must be positive");
    let n = graph.num_vertices();
    let mut dist = vec![INF_DIST; n];
    let mut edges_processed = 0u64;
    if n == 0 {
        return (dist, edges_processed);
    }
    dist[source as usize] = 0;
    let num_buckets = (graph.max_distance_bound() / delta + 2) as usize;
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); num_buckets.min(1 << 22)];
    buckets[0].push(source);
    let bucket_of = |d: Dist| (d / delta) as usize;

    let mut i = 0usize;
    while i < buckets.len() {
        // Settle bucket i: repeatedly relax light edges of its members.
        let mut deleted: Vec<VertexId> = Vec::new();
        while let Some(u) = buckets[i].pop() {
            let du = dist[u as usize];
            if du == INF_DIST || bucket_of(du) != i {
                continue; // stale entry
            }
            deleted.push(u);
            for (v, w) in graph.out_edges(u) {
                if (w as Dist) >= delta {
                    continue; // heavy edge, handled later
                }
                edges_processed += 1;
                let nd = du + w as Dist;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    let b = bucket_of(nd);
                    if b < buckets.len() {
                        buckets[b].push(v);
                    }
                }
            }
        }
        // Relax heavy edges of everything settled in this bucket.
        for &u in &deleted {
            let du = dist[u as usize];
            for (v, w) in graph.out_edges(u) {
                if (w as Dist) < delta {
                    continue;
                }
                edges_processed += 1;
                let nd = du + w as Dist;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    let b = bucket_of(nd);
                    if b < buckets.len() {
                        buckets[b].push(v);
                    }
                }
            }
        }
        i += 1;
    }
    (dist, edges_processed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use fg_graph::gen;

    #[test]
    fn agrees_with_dijkstra_for_various_deltas() {
        let g = gen::erdos_renyi(200, 1200, 7).with_random_weights(9, 7);
        let oracle = dijkstra(&g, 5);
        for delta in [1, 2, 4, 16, 1000] {
            let (dist, _) = delta_stepping(&g, 5, delta);
            assert_eq!(dist, oracle.dist, "delta {delta}");
        }
    }

    #[test]
    fn agrees_on_road_like_graphs() {
        let g = gen::grid2d(25, 25, 0.02, 3).with_random_weights(9, 1);
        let oracle = dijkstra(&g, 0);
        let (dist, _) = delta_stepping(&g, 0, 5);
        assert_eq!(dist, oracle.dist);
    }

    #[test]
    fn small_delta_processes_no_fewer_edges_than_dijkstra() {
        let g = gen::grid2d(20, 20, 0.0, 1).with_random_weights(6, 2);
        let d = dijkstra(&g, 0);
        let (_, work1) = delta_stepping(&g, 0, 1);
        assert!(work1 >= d.edges_processed / 2, "delta-stepping did suspiciously little work");
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn zero_delta_panics() {
        let g = gen::path(4);
        let _ = delta_stepping(&g, 0, 0);
    }

    #[test]
    fn unweighted_graph_with_delta_one_matches_bfs() {
        let g = gen::path(30);
        let (dist, _) = delta_stepping(&g, 0, 1);
        for (v, d) in dist.iter().enumerate() {
            assert_eq!(*d, v as Dist);
        }
    }
}
