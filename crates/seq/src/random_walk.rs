//! Bounded random walks.
//!
//! Random-walk FPP queries (Figure 15 of the paper) launch many independent
//! walkers from different sources; each walker takes a fixed number of steps
//! and the per-vertex visit counts approximate the stationary/PPR distribution.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fg_graph::{CsrGraph, VertexId};

/// Parameters of a random-walk query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RandomWalkConfig {
    /// Number of independent walkers started at the source.
    pub num_walks: usize,
    /// Steps per walker.
    pub walk_length: usize,
    /// Probability of restarting at the source at each step (0 disables).
    pub restart_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        RandomWalkConfig { num_walks: 16, walk_length: 32, restart_prob: 0.15, seed: 1 }
    }
}

/// Result of a random-walk query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RandomWalkResult {
    /// Source vertex.
    pub source: VertexId,
    /// Sparse visit counts `(vertex, visits)`.
    pub visits: Vec<(VertexId, u64)>,
    /// Total steps taken (edges traversed).
    pub edges_processed: u64,
}

impl RandomWalkResult {
    /// Total number of visits recorded.
    pub fn total_visits(&self) -> u64 {
        self.visits.iter().map(|(_, c)| c).sum()
    }
}

/// Run `config.num_walks` walks of `config.walk_length` steps from `source`.
pub fn random_walks(
    graph: &CsrGraph,
    source: VertexId,
    config: &RandomWalkConfig,
) -> RandomWalkResult {
    let mut rng =
        SmallRng::seed_from_u64(config.seed ^ (source as u64).wrapping_mul(0x9e3779b97f4a7c15));
    let mut counts = std::collections::HashMap::<VertexId, u64>::new();
    let mut edges_processed = 0u64;
    for _ in 0..config.num_walks {
        let mut current = source;
        *counts.entry(current).or_insert(0) += 1;
        for _ in 0..config.walk_length {
            if config.restart_prob > 0.0 && rng.gen_bool(config.restart_prob) {
                current = source;
            } else {
                let neighbors = graph.out_neighbors(current);
                if neighbors.is_empty() {
                    current = source; // dangling: restart
                } else {
                    current = neighbors[rng.gen_range(0..neighbors.len())];
                    edges_processed += 1;
                }
            }
            *counts.entry(current).or_insert(0) += 1;
        }
    }
    let mut visits: Vec<(VertexId, u64)> = counts.into_iter().collect();
    visits.sort_unstable();
    RandomWalkResult { source, visits, edges_processed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::gen;

    #[test]
    fn visit_counts_add_up() {
        let g = gen::rmat(8, 5, 1);
        let config =
            RandomWalkConfig { num_walks: 10, walk_length: 20, restart_prob: 0.1, seed: 3 };
        let r = random_walks(&g, 0, &config);
        assert_eq!(r.total_visits(), (10 * (20 + 1)) as u64);
    }

    #[test]
    fn walks_are_deterministic_given_seed() {
        let g = gen::rmat(8, 5, 2);
        let config = RandomWalkConfig::default();
        assert_eq!(random_walks(&g, 5, &config), random_walks(&g, 5, &config));
    }

    #[test]
    fn isolated_source_stays_put() {
        let g = fg_graph::GraphBuilder::new(3).build(); // no edges
        let r = random_walks(&g, 1, &RandomWalkConfig::default());
        assert_eq!(r.visits, vec![(1, r.total_visits())]);
        assert_eq!(r.edges_processed, 0);
    }

    #[test]
    fn restart_probability_keeps_walks_local() {
        let g = gen::path(200);
        let sticky = random_walks(
            &g,
            100,
            &RandomWalkConfig { num_walks: 50, walk_length: 50, restart_prob: 0.5, seed: 9 },
        );
        let free = random_walks(
            &g,
            100,
            &RandomWalkConfig { num_walks: 50, walk_length: 50, restart_prob: 0.0, seed: 9 },
        );
        let spread = |r: &RandomWalkResult| {
            r.visits.iter().map(|&(v, _)| (v as i64 - 100).unsigned_abs()).max().unwrap()
        };
        assert!(spread(&sticky) <= spread(&free));
    }

    #[test]
    fn source_is_most_visited_with_high_restart() {
        let g = gen::rmat(9, 6, 4);
        let r = random_walks(
            &g,
            7,
            &RandomWalkConfig { num_walks: 30, walk_length: 30, restart_prob: 0.3, seed: 1 },
        );
        let max = r.visits.iter().max_by_key(|&&(_, c)| c).unwrap();
        assert_eq!(max.0, 7);
    }
}
