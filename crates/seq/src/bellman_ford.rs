//! Bellman–Ford shortest paths.
//!
//! Used as an independent oracle for SSSP correctness tests and as the basis of
//! the atomic-free, topology-driven SSSP of Appendix E (implemented in
//! `fg-baselines`).

use fg_graph::{CsrGraph, Dist, VertexId, INF_DIST};

/// Run Bellman–Ford from `source`, returning `(dist, edges_processed)`.
///
/// Iterates until no distance changes (early exit), which for non-negative
/// weights always terminates within `|V|` rounds.
pub fn bellman_ford(graph: &CsrGraph, source: VertexId) -> (Vec<Dist>, u64) {
    let n = graph.num_vertices();
    let mut dist = vec![INF_DIST; n];
    dist[source as usize] = 0;
    let mut edges_processed = 0u64;
    for _round in 0..n {
        let mut changed = false;
        for u in 0..n as VertexId {
            let du = dist[u as usize];
            if du == INF_DIST {
                continue;
            }
            for (v, w) in graph.out_edges(u) {
                edges_processed += 1;
                let nd = du + w as Dist;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    (dist, edges_processed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use fg_graph::{gen, GraphBuilder};

    #[test]
    fn agrees_with_dijkstra_on_random_weighted_graphs() {
        for seed in 0..3u64 {
            let g = gen::erdos_renyi(150, 900, seed).with_random_weights(7, seed);
            let (bf, _) = bellman_ford(&g, 0);
            let d = dijkstra(&g, 0);
            assert_eq!(bf, d.dist, "seed {seed}");
        }
    }

    #[test]
    fn performs_more_work_than_dijkstra_on_road_like_graphs() {
        let g = gen::grid2d(30, 30, 0.0, 1).with_random_weights(9, 3);
        let (_, bf_work) = bellman_ford(&g, 0);
        let d = dijkstra(&g, 0);
        assert!(bf_work > d.edges_processed, "bf {bf_work} vs dijkstra {}", d.edges_processed);
    }

    #[test]
    fn disconnected_component_unreachable() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 2);
        b.add_edge(3, 4, 2);
        let g = b.build();
        let (dist, _) = bellman_ford(&g, 0);
        assert_eq!(dist[1], 2);
        assert_eq!(dist[3], INF_DIST);
        assert_eq!(dist[4], INF_DIST);
    }
}
