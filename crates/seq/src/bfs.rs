//! Sequential breadth-first search.

use std::collections::VecDeque;

use fg_graph::{CsrGraph, VertexId};

/// Result of a BFS traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResult {
    /// Source vertex.
    pub source: VertexId,
    /// `level[v]` is the hop distance from the source, or `u32::MAX` if
    /// unreachable.
    pub level: Vec<u32>,
    /// BFS-tree parent (equals `v` for the source and unreachable vertices).
    pub parent: Vec<VertexId>,
    /// Number of edges examined.
    pub edges_processed: u64,
}

impl BfsResult {
    /// Number of vertices reached (including the source).
    pub fn num_reached(&self) -> usize {
        self.level.iter().filter(|&&l| l != u32::MAX).count()
    }

    /// Maximum finite level (the eccentricity of the source).
    pub fn max_level(&self) -> u32 {
        self.level.iter().filter(|&&l| l != u32::MAX).max().copied().unwrap_or(0)
    }
}

/// Run a sequential BFS from `source`.
pub fn bfs(graph: &CsrGraph, source: VertexId) -> BfsResult {
    let n = graph.num_vertices();
    let mut level = vec![u32::MAX; n];
    let mut parent: Vec<VertexId> = (0..n as VertexId).collect();
    let mut edges_processed = 0u64;
    let mut queue = VecDeque::new();
    level[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let lu = level[u as usize];
        for &v in graph.out_neighbors(u) {
            edges_processed += 1;
            if level[v as usize] == u32::MAX {
                level[v as usize] = lu + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    BfsResult { source, level, parent, edges_processed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{gen, GraphBuilder};

    #[test]
    fn levels_on_a_path() {
        let g = gen::path(6);
        let r = bfs(&g, 0);
        assert_eq!(r.level, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.max_level(), 5);
        assert_eq!(r.num_reached(), 6);
    }

    #[test]
    fn levels_from_middle_of_path() {
        let g = gen::path(5);
        let r = bfs(&g, 2);
        assert_eq!(r.level, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_vertices() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let r = bfs(&g, 0);
        assert_eq!(r.level[2], u32::MAX);
        assert_eq!(r.num_reached(), 2);
    }

    #[test]
    fn edge_count_equals_edges_of_reached_vertices() {
        let g = gen::rmat(8, 5, 4);
        let r = bfs(&g, 1);
        let expected: u64 = (0..g.num_vertices() as VertexId)
            .filter(|&v| r.level[v as usize] != u32::MAX)
            .map(|v| g.out_degree(v) as u64)
            .sum();
        assert_eq!(r.edges_processed, expected);
    }

    #[test]
    fn parents_are_one_level_up() {
        let g = gen::grid2d(12, 12, 0.0, 1);
        let r = bfs(&g, 5);
        for v in 0..g.num_vertices() {
            if r.level[v] != u32::MAX && r.level[v] > 0 {
                assert_eq!(r.level[r.parent[v] as usize] + 1, r.level[v]);
            }
        }
    }
}
