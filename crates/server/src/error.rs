//! Typed wire-layer failures.
//!
//! Every way a byte stream can disappoint the codec gets its own variant, so
//! the connection layer (and the property tests) can assert *which* rule a
//! malformed frame broke instead of pattern-matching error strings. None of
//! these ever panic the decoder: garbage in, typed error out.

use std::fmt;
use std::io;

/// A malformed frame body (or frame header) that the codec rejected.
///
/// Protocol errors are *recoverable* at the connection level whenever the
/// length prefix itself was intact: the frame boundary is known, so the
/// reader can discard the bad body, report the error, and stay in sync for
/// the next frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The body ended before a field it promised. `expected` is the byte
    /// count the field needed, `remaining` what was actually left.
    Truncated {
        /// Which field ran dry.
        field: &'static str,
        /// Bytes the field required.
        expected: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A frame header declared a body longer than the configured cap.
    Oversized {
        /// Declared body length.
        len: usize,
        /// The receiver's cap.
        max: usize,
    },
    /// The first body byte names no known frame kind.
    UnknownFrameKind(u8),
    /// A frame kind that is valid on the wire but wrong for this direction
    /// (e.g. a response frame arriving at the server).
    UnexpectedFrameKind {
        /// The kind byte received.
        got: u8,
        /// What the receiver accepts.
        expected: &'static str,
    },
    /// A parameter value carried an unknown type tag.
    UnknownParamTag(u8),
    /// A mutate frame carried an unknown operation byte.
    UnknownMutationOp(u8),
    /// A result payload carried an unknown type tag.
    UnknownPayloadTag(u8),
    /// An error frame carried an unknown error code.
    UnknownErrorCode(u8),
    /// A string field was not valid UTF-8.
    BadUtf8 {
        /// Which field held the bad bytes.
        field: &'static str,
    },
    /// A declared element count could not fit in the bytes that remained
    /// (rejected *before* allocating, so a hostile count cannot OOM the
    /// server).
    BadCount {
        /// Which field declared the count.
        field: &'static str,
        /// The declared element count.
        count: u64,
        /// Bytes that remained for the elements.
        remaining: usize,
    },
    /// The body decoded cleanly but left unconsumed bytes — a framing bug on
    /// the sender, surfaced instead of silently ignored.
    TrailingBytes {
        /// Leftover byte count.
        extra: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated { field, expected, remaining } => {
                write!(f, "truncated frame: field {field} needs {expected} bytes, {remaining} left")
            }
            ProtocolError::Oversized { len, max } => {
                write!(f, "oversized frame: declared {len} bytes, cap is {max}")
            }
            ProtocolError::UnknownFrameKind(kind) => write!(f, "unknown frame kind {kind:#04x}"),
            ProtocolError::UnexpectedFrameKind { got, expected } => {
                write!(f, "unexpected frame kind {got:#04x} (receiver accepts {expected})")
            }
            ProtocolError::UnknownParamTag(tag) => write!(f, "unknown parameter tag {tag:#04x}"),
            ProtocolError::UnknownMutationOp(op) => write!(f, "unknown mutation op {op:#04x}"),
            ProtocolError::UnknownPayloadTag(tag) => write!(f, "unknown payload tag {tag:#04x}"),
            ProtocolError::UnknownErrorCode(code) => write!(f, "unknown error code {code:#04x}"),
            ProtocolError::BadUtf8 { field } => write!(f, "field {field} is not valid UTF-8"),
            ProtocolError::BadCount { field, count, remaining } => {
                write!(
                    f,
                    "field {field} declares {count} elements but only {remaining} bytes remain"
                )
            }
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete frame body")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Why reading the next frame off a connection failed.
#[derive(Debug)]
pub enum FrameReadError {
    /// Clean end of stream at a frame boundary — the peer closed; not an
    /// error condition.
    Closed,
    /// End of stream in the middle of a header or body: the peer vanished
    /// mid-frame. Unlike [`ProtocolError::Truncated`] this is unrecoverable
    /// (there is no next boundary to resynchronise on).
    Truncated {
        /// Bytes still owed by the peer.
        missing: usize,
    },
    /// The declared body length exceeded the cap. The reader has already
    /// *discarded* the declared bytes, so the stream is still in sync and
    /// the caller may keep the connection.
    Oversized {
        /// Declared body length.
        len: usize,
        /// The receiver's cap.
        max: usize,
    },
    /// A configured read timeout elapsed. `mid_frame` distinguishes a peer
    /// that went quiet **between** frames (idle — the stream is still in
    /// sync) from one that stalled **inside** a frame it started (the
    /// slow-loris shape — the stream can never resynchronise, because the
    /// missing bytes define where the next boundary would be).
    TimedOut {
        /// Whether at least one byte of the current frame had arrived.
        mid_frame: bool,
    },
    /// Transport failure.
    Io(io::Error),
}

impl fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameReadError::Closed => write!(f, "connection closed at a frame boundary"),
            FrameReadError::Truncated { missing } => {
                write!(f, "connection closed mid-frame ({missing} bytes short)")
            }
            FrameReadError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap (body discarded)")
            }
            FrameReadError::TimedOut { mid_frame: true } => {
                write!(f, "read timed out mid-frame (peer stalled inside a frame it started)")
            }
            FrameReadError::TimedOut { mid_frame: false } => {
                write!(f, "read timed out at a frame boundary (idle peer)")
            }
            FrameReadError::Io(e) => write!(f, "frame read failed: {e}"),
        }
    }
}

impl std::error::Error for FrameReadError {}

impl From<io::Error> for FrameReadError {
    fn from(e: io::Error) -> Self {
        FrameReadError::Io(e)
    }
}

/// Client-side failure reading or interpreting a server frame.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server closed the connection (cleanly or mid-frame).
    Closed,
    /// The server sent bytes the response codec rejects.
    Protocol(ProtocolError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Protocol(e) => write!(f, "protocol error from server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Closed | FrameReadError::Truncated { .. } => ClientError::Closed,
            FrameReadError::Oversized { len, max } => {
                ClientError::Protocol(ProtocolError::Oversized { len, max })
            }
            FrameReadError::TimedOut { .. } => {
                ClientError::Io(io::Error::from(io::ErrorKind::TimedOut))
            }
            FrameReadError::Io(e) => ClientError::Io(e),
        }
    }
}
