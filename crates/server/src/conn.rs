//! Per-connection plumbing: one reader thread + one writer thread, joined by
//! an outbox queue, multiplexing ticket resolutions back over the socket.
//!
//! The reader deserializes frames straight into [`Query`] builder calls and
//! submits them through the shared [`ServiceHandle`] — the same admission
//! control local callers face. Admitted queries park as `(correlation,
//! ticket)` pairs in the outbox; the writer resolves them **in completion
//! order**, not submission order, so a pipelined connection gets cache hits
//! back while cold queries are still batching.
//!
//! Saturation ([`ServiceError::Saturated`]) is answered with a retry-after
//! frame and the connection stays open: backpressure sheds *queries*, never
//! clients. Decodable-but-broken frames get typed error frames; only a
//! vanished peer or transport failure ends the loops.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fg_service::{ServiceError, Ticket};
use parking_lot::{Condvar, Mutex};

use crate::error::FrameReadError;
use crate::framing::{read_frame_hooked, write_frame};
use crate::protocol::{
    decode_client_frame, encode_response, ClientFrame, Response, WireErrorCode, WirePayload,
    CONNECTION_CORRELATION,
};
use crate::server::ServerCore;

/// How long the writer parks on the oldest in-flight ticket before rescanning
/// the whole set for out-of-order completions.
const RESCAN_INTERVAL: Duration = Duration::from_millis(2);

/// Work queued for the writer thread.
enum Outgoing {
    /// A response that needs no waiting (errors, retry-afters, cache hits
    /// the reader chose not to special-case).
    Ready(Response),
    /// An admitted query: resolve the ticket, then encode whatever it says.
    Pending { correlation: u32, ticket: Ticket },
    /// The reader is done; drain everything above, then hang up.
    Finish,
}

/// Reader → writer handoff: a mutex-guarded queue plus a condvar so the
/// writer can sleep when nothing is queued *and* nothing is in flight.
struct Outbox {
    queue: Mutex<VecDeque<Outgoing>>,
    ready: Condvar,
}

impl Outbox {
    fn new() -> Self {
        Outbox { queue: Mutex::new(VecDeque::new()), ready: Condvar::new() }
    }

    fn push(&self, item: Outgoing) {
        self.queue.lock().push_back(item);
        self.ready.notify_one();
    }
}

/// Map a service failure to its wire code. `Saturated` is deliberately
/// absent — it travels as a retry-after frame, never as an error.
fn error_code(err: &ServiceError) -> WireErrorCode {
    match err {
        ServiceError::ShuttingDown => WireErrorCode::ShuttingDown,
        ServiceError::InvalidSource { .. } => WireErrorCode::InvalidSource,
        ServiceError::MissingSource { .. } => WireErrorCode::MissingSource,
        ServiceError::UnknownKernel { .. } => WireErrorCode::UnknownKernel,
        ServiceError::InvalidParams { .. } => WireErrorCode::InvalidParams,
        ServiceError::ResultMismatch(_) => WireErrorCode::UnsupportedResult,
        ServiceError::EngineFailure => WireErrorCode::EngineFailure,
        ServiceError::InvalidMutation { .. } => WireErrorCode::InvalidMutation,
        // Shouldn't surface from a resolved ticket; keep it typed anyway.
        ServiceError::Saturated { .. } => WireErrorCode::ShuttingDown,
    }
}

/// Clamp a `usize` counter into the `u32` a wire frame carries.
pub(crate) fn clamp_u32(value: usize) -> u32 {
    value.min(u32::MAX as usize) as u32
}

/// Drive one sniffed-as-binary connection to completion. Runs on the
/// connection's reader thread; spawns (and joins) the writer thread.
pub(crate) fn run_binary_connection(core: Arc<ServerCore>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };

    let outbox = Arc::new(Outbox::new());
    // Queries admitted but not yet answered on this connection; incremented
    // by the reader on admission, decremented by the writer on resolution.
    let inflight = Arc::new(AtomicUsize::new(0));
    let writer_core = Arc::clone(&core);
    let writer_outbox = Arc::clone(&outbox);
    let writer_inflight = Arc::clone(&inflight);
    let writer = std::thread::Builder::new()
        .name("fg-server-conn-writer".into())
        .spawn(move || writer_loop(writer_core, writer_outbox, writer_inflight, write_half))
        .expect("spawn connection writer");

    reader_loop(&core, &outbox, &inflight, &stream);
    outbox.push(Outgoing::Finish);
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

fn reader_loop(core: &ServerCore, outbox: &Outbox, inflight: &AtomicUsize, stream: &TcpStream) {
    let max_len = core.config.max_frame_len;
    let idle_timeout = core.config.idle_timeout;
    let read_deadline = core.config.read_deadline;
    let mut reader = BufReader::new(stream);
    loop {
        // Two-phase timeout per frame: wait at the boundary under the
        // generous idle budget, then — the moment the first header byte
        // lands — tighten to the read deadline so a peer that *started* a
        // frame cannot drip it out one byte at a time while parking this
        // thread (the slow-loris shape). `BufReader` may satisfy reads from
        // its buffer without touching the socket; the timeouts only matter
        // when the socket actually blocks, so that is harmless.
        let _ = stream.set_read_timeout(idle_timeout);
        let body = match read_frame_hooked(&mut reader, max_len, || {
            let _ = stream.set_read_timeout(read_deadline);
        }) {
            Ok(body) => body,
            Err(FrameReadError::TimedOut { mid_frame }) => {
                // Reap: a mid-frame stall can never resynchronise, and an
                // idle peer has out-stayed its budget. In-flight tickets
                // still drain through the writer before the socket closes.
                core.stats.connections_timed_out.fetch_add(1, Ordering::Relaxed);
                if mid_frame {
                    core.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            Err(FrameReadError::Oversized { len, max }) => {
                // Body already discarded; the stream is still framed.
                core.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                outbox.push(Outgoing::Ready(Response::Error {
                    correlation: CONNECTION_CORRELATION,
                    code: WireErrorCode::Protocol,
                    message: format!("frame of {len} bytes exceeds the {max}-byte cap"),
                }));
                continue;
            }
            // Clean close, mid-frame close, or transport failure: no further
            // requests can arrive, so stop reading. In-flight tickets still
            // drain through the writer.
            Err(_) => return,
        };
        core.stats.frames_in.fetch_add(1, Ordering::Relaxed);
        let frame = match decode_client_frame(&body) {
            Ok(frame) => frame,
            Err(err) => {
                core.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                outbox.push(Outgoing::Ready(Response::Error {
                    correlation: CONNECTION_CORRELATION,
                    code: WireErrorCode::Protocol,
                    message: err.to_string(),
                }));
                continue;
            }
        };
        let correlation = match &frame {
            ClientFrame::Query(request) => request.correlation,
            ClientFrame::Mutate(request) => request.correlation,
        };
        if correlation == CONNECTION_CORRELATION {
            core.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            outbox.push(Outgoing::Ready(Response::Error {
                correlation: CONNECTION_CORRELATION,
                code: WireErrorCode::Protocol,
                message: "correlation 0 is reserved for connection-level errors".into(),
            }));
            continue;
        }
        let request = match frame {
            // Mutations are logged synchronously (no ticket, no engine run);
            // the acknowledgement carries the target graph version.
            ClientFrame::Mutate(request) => {
                let response = match core.handle.mutate(request.mutation) {
                    Ok(version) => {
                        Response::Result { correlation, payload: WirePayload::Version(version) }
                    }
                    Err(err) => Response::Error {
                        correlation,
                        code: error_code(&err),
                        message: err.to_string(),
                    },
                };
                outbox.push(Outgoing::Ready(response));
                continue;
            }
            ClientFrame::Query(request) => request,
        };
        // Bound this connection's admitted-but-unanswered queries: one
        // pipelining peer must not park the whole service's queue capacity
        // behind its own socket. Over-limit requests are shed with the same
        // retry-after flow control as service saturation.
        let observed = inflight.load(Ordering::Acquire);
        if observed >= core.config.max_inflight_per_conn {
            core.stats.retry_afters.fetch_add(1, Ordering::Relaxed);
            outbox.push(Outgoing::Ready(Response::RetryAfter {
                correlation,
                retry_after_ms: core.config.retry_after_ms,
                queue_depth: clamp_u32(observed),
                capacity: clamp_u32(core.config.max_inflight_per_conn),
            }));
            continue;
        }
        match core.handle.submit_query(request.to_query()) {
            Ok(ticket) => {
                inflight.fetch_add(1, Ordering::AcqRel);
                outbox.push(Outgoing::Pending { correlation, ticket });
            }
            Err(ServiceError::Saturated { queue_depth, capacity }) => {
                core.stats.retry_afters.fetch_add(1, Ordering::Relaxed);
                outbox.push(Outgoing::Ready(Response::RetryAfter {
                    correlation,
                    retry_after_ms: core.config.retry_after_ms,
                    queue_depth: clamp_u32(queue_depth),
                    capacity: clamp_u32(capacity),
                }));
            }
            Err(err) => {
                outbox.push(Outgoing::Ready(Response::Error {
                    correlation,
                    code: error_code(&err),
                    message: err.to_string(),
                }));
            }
        }
    }
}

fn writer_loop(
    core: Arc<ServerCore>,
    outbox: Arc<Outbox>,
    inflight_count: Arc<AtomicUsize>,
    stream: TcpStream,
) {
    let mut writer = BufWriter::new(stream);
    let mut inflight: VecDeque<(u32, Ticket)> = VecDeque::new();
    let mut finishing = false;

    loop {
        // Pull everything currently queued (without holding the lock while
        // encoding or writing).
        let drained: Vec<Outgoing> = {
            let mut queue = outbox.queue.lock();
            if queue.is_empty() && inflight.is_empty() && !finishing {
                outbox.ready.wait_for(&mut queue, Duration::from_millis(50));
            }
            queue.drain(..).collect()
        };

        let mut wrote = false;
        for item in drained {
            match item {
                Outgoing::Ready(response) => {
                    if !emit(&core, &mut writer, &response) {
                        return;
                    }
                    wrote = true;
                }
                Outgoing::Pending { correlation, ticket } => {
                    inflight.push_back((correlation, ticket))
                }
                Outgoing::Finish => finishing = true,
            }
        }

        // Flush completions in whatever order they became ready.
        let mut still_waiting = VecDeque::with_capacity(inflight.len());
        for (correlation, ticket) in inflight.drain(..) {
            match ticket.try_result() {
                Some(outcome) => {
                    inflight_count.fetch_sub(1, Ordering::AcqRel);
                    if !emit(&core, &mut writer, &resolve(&core, correlation, outcome)) {
                        return;
                    }
                    wrote = true;
                }
                None => still_waiting.push_back((correlation, ticket)),
            }
        }
        inflight = still_waiting;

        if wrote && writer.flush().is_err() {
            return;
        }

        if finishing && inflight.is_empty() {
            // Everything admitted on this connection has been answered.
            let _ = writer.flush();
            return;
        }

        if !wrote && !inflight.is_empty() {
            // Nothing was ready: park briefly on the oldest ticket. A newer
            // ticket may finish first (cache hit overtaking a cold run) —
            // the bounded timeout caps how stale the rescan can be.
            let (_, oldest) = &inflight[0];
            let _ = oldest.wait_timeout(RESCAN_INTERVAL);
        }
    }
}

/// Turn a resolved ticket outcome into its wire frame.
fn resolve(
    core: &ServerCore,
    correlation: u32,
    outcome: Result<Arc<fg_service::QueryResult>, ServiceError>,
) -> Response {
    match outcome {
        Ok(result) => match WirePayload::from_result(&result) {
            Some(payload) => Response::Result { correlation, payload },
            None => Response::Error {
                correlation,
                code: WireErrorCode::UnsupportedResult,
                message: format!(
                    "kernel {:?} produced a state type with no wire encoding",
                    result.kernel_name()
                ),
            },
        },
        Err(ServiceError::Saturated { queue_depth, capacity }) => Response::RetryAfter {
            correlation,
            retry_after_ms: core.config.retry_after_ms,
            queue_depth: clamp_u32(queue_depth),
            capacity: clamp_u32(capacity),
        },
        Err(err) => {
            Response::Error { correlation, code: error_code(&err), message: err.to_string() }
        }
    }
}

/// Encode and write one frame; `false` means the socket is gone.
fn emit(core: &ServerCore, writer: &mut impl Write, response: &Response) -> bool {
    core.stats.frames_out.fetch_add(1, Ordering::Relaxed);
    write_frame(writer, &encode_response(response)).is_ok()
}
