//! A deliberately tiny HTTP/1.1 GET surface on the shared listener, for
//! scrapers and humans: `/metrics` (Prometheus text exposition), `/healthz`,
//! and `/trace` (Chrome `chrome://tracing` JSON).
//!
//! This is not a web server. One request per connection
//! (`Connection: close`), GET only, no keep-alive, bounded header read. The
//! point is that the same port answering binary queries also answers
//! `curl http://host:port/metrics` — one process, one address, full
//! observability.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;

use crate::server::ServerCore;

/// Cap on request line + headers; a scraper needs far less.
const MAX_HEAD: usize = 8 * 1024;

/// Serve one sniffed-as-HTTP connection. `prefix` holds the 4 bytes the
/// sniffer already consumed (the start of the method). The configured
/// `read_deadline` bounds the header read — the HTTP dialect gets the same
/// slow-loris guard as the binary one, and a reap counts in
/// `fg_server_connections_timed_out_total`.
pub(crate) fn run_http_connection(core: &ServerCore, stream: TcpStream, prefix: &[u8]) {
    core.stats.http_requests.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_read_timeout(core.config.read_deadline);
    let mut head = prefix.to_vec();
    match read_head(&stream, &mut head) {
        HeadRead::Complete => {}
        HeadRead::TimedOut => {
            core.stats.connections_timed_out.fetch_add(1, Ordering::Relaxed);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        HeadRead::Failed => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
    let response = respond(core, &head);
    let mut writer = &stream;
    let _ = writer.write_all(&response);
    let _ = writer.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Outcome of reading one request head.
enum HeadRead {
    /// The blank line ending the headers arrived within the deadline.
    Complete,
    /// The peer stalled past the configured `read_deadline`.
    TimedOut,
    /// Closed, reset, or oversized head.
    Failed,
}

/// Read until the blank line ending the headers (or the cap / a timeout).
fn read_head(mut stream: &TcpStream, head: &mut Vec<u8>) -> HeadRead {
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && !head.windows(2).any(|w| w == b"\n\n") {
        if head.len() > MAX_HEAD {
            return HeadRead::Failed;
        }
        match stream.read(&mut buf) {
            Ok(0) => return HeadRead::Failed,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return HeadRead::TimedOut;
            }
            Err(_) => return HeadRead::Failed,
        }
    }
    HeadRead::Complete
}

fn respond(core: &ServerCore, head: &[u8]) -> Vec<u8> {
    let request_line = match std::str::from_utf8(head).ok().and_then(|text| text.lines().next()) {
        Some(line) => line,
        None => return render(400, "text/plain; charset=utf-8", "bad request\n"),
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(method), Some(path)) => (method, path),
        _ => return render(400, "text/plain; charset=utf-8", "bad request\n"),
    };
    if method != "GET" {
        return render(405, "text/plain; charset=utf-8", "method not allowed; GET only\n");
    }
    // Ignore any query string: scrapers sometimes append cache-busters.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/healthz" => {
            let status =
                if core.stopping() || core.service.is_draining() { "draining" } else { "ok" };
            render(200, "text/plain; charset=utf-8", &format!("{status}\n"))
        }
        "/metrics" => render(200, "text/plain; version=0.0.4", &metrics_body(core)),
        "/trace" => match core.service.trace_handle() {
            Some(trace) => render(200, "application/json", &trace.chrome_trace()),
            None => render(
                404,
                "text/plain; charset=utf-8",
                "tracing not enabled; start the service with start_traced\n",
            ),
        },
        _ => render(
            404,
            "text/plain; charset=utf-8",
            "unknown path; try /metrics, /healthz, /trace\n",
        ),
    }
}

/// The `/metrics` body: the service/pool/trace families the tracing layer
/// already knows how to render, plus this server's own `fg_server_*` wire
/// counters.
pub(crate) fn metrics_body(core: &ServerCore) -> String {
    let mut body = match core.service.trace_handle() {
        Some(trace) => trace.exposition(),
        None => {
            let snapshot = core.handle.metrics();
            let pool = core.service.pool_metrics();
            fg_trace::expose(Some(&snapshot), pool.as_ref(), None)
        }
    };
    let stats = &core.stats;
    let families: [(&str, &str, u64); 8] = [
        (
            "fg_server_connections_accepted_total",
            "Connections accepted by the front door listener",
            stats.connections_accepted.load(Ordering::Relaxed),
        ),
        (
            "fg_server_connections_rejected_total",
            "Connections shed at accept time by the concurrency cap",
            stats.connections_rejected.load(Ordering::Relaxed),
        ),
        (
            "fg_server_frames_in_total",
            "Binary request frames read off the wire",
            stats.frames_in.load(Ordering::Relaxed),
        ),
        (
            "fg_server_frames_out_total",
            "Binary response frames written to the wire",
            stats.frames_out.load(Ordering::Relaxed),
        ),
        (
            "fg_server_protocol_errors_total",
            "Malformed frames answered with a typed error",
            stats.protocol_errors.load(Ordering::Relaxed),
        ),
        (
            "fg_server_retry_after_total",
            "Queries shed with a retry-after frame under saturation",
            stats.retry_afters.load(Ordering::Relaxed),
        ),
        (
            "fg_server_http_requests_total",
            "HTTP requests served on the shared listener",
            stats.http_requests.load(Ordering::Relaxed),
        ),
        (
            "fg_server_connections_timed_out_total",
            "Connections reaped by the idle timeout or mid-frame read deadline",
            stats.connections_timed_out.load(Ordering::Relaxed),
        ),
    ];
    for (name, help, value) in families {
        body.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
    }
    body
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

fn render(code: u16, content_type: &str, body: &str) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {code} {status}\r\nContent-Type: {content_type}\r\nContent-Length: {len}\r\nConnection: close\r\n\r\n",
        status = status_text(code),
        len = body.len(),
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}
