//! The front door itself: a threaded TCP listener multiplexing two dialects
//! on one port.
//!
//! Each accepted socket is *sniffed*: a peer that opens with the 4-byte
//! [`MAGIC`](crate::protocol::MAGIC) speaks the binary query protocol and
//! gets a reader/writer thread pair ([`crate::conn`]); anything else is
//! treated as an HTTP/1.1 scraper and answered by [`crate::http`]. One
//! listener therefore serves queries, `/metrics`, `/healthz`, and `/trace`.
//!
//! Shutdown is a drain, not a guillotine:
//!
//! 1. stop accepting new connections,
//! 2. [`ForkGraphService::begin_drain`] — new submits are shed with a typed
//!    `ShuttingDown` error while everything already admitted keeps running,
//! 3. half-close (`Shutdown::Read`) every open connection so readers wind
//!    down while writers flush each outstanding correlation ID,
//! 4. join connection threads, then shut the service itself down.
//!
//! Every correlation admitted before step 2 is *answered* — resolved or
//! rejected — before the socket closes.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fg_service::{ForkGraphService, ServiceHandle};
use parking_lot::Mutex;

use crate::framing::{write_frame, MAX_FRAME_LEN};
use crate::protocol::{encode_response, Response, CONNECTION_CORRELATION, MAGIC};

/// Accept-loop poll interval while checking the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Tuning for [`ForkGraphServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind. Port `0` picks an ephemeral port — read it back via
    /// [`ForkGraphServer::local_addr`].
    pub addr: String,
    /// Per-frame body cap (both directions). Oversized frames are discarded
    /// and answered with a typed error; the connection survives.
    pub max_frame_len: usize,
    /// Backoff hint carried by retry-after frames when admission control
    /// sheds a query.
    pub retry_after_ms: u32,
    /// Cap on concurrently served connections. A peer accepted beyond it is
    /// answered with a single retry-after frame (correlation `0`) and
    /// closed, instead of being handed an unbounded thread — an accept
    /// flood degrades into flow control, not thread exhaustion.
    pub max_connections: usize,
    /// Cap on one connection's admitted-but-unanswered queries. Over-limit
    /// requests get a retry-after frame carrying the observed in-flight
    /// depth; the connection survives. Keeps a single pipelining client
    /// from parking the whole service queue behind its socket.
    pub max_inflight_per_conn: usize,
    /// How long a binary connection may sit **between** frames before it is
    /// reaped. `None` disables the guard (a quiet peer holds its slot
    /// forever). Idle reaps close the socket but count as tidy closes —
    /// nothing was half-sent, so the peer can simply reconnect.
    pub idle_timeout: Option<Duration>,
    /// How long a peer gets to finish a frame it has **started** (binary
    /// dialect) or its request head (HTTP dialect). A stall past this
    /// deadline is the slow-loris shape (drip one byte, park a server thread
    /// indefinitely); the connection is reaped and counted in
    /// `fg_server_connections_timed_out_total`. `None` disables the guard.
    /// The dialect sniff itself is bounded by
    /// [`sniff_timeout`](Self::sniff_timeout), derived from this and
    /// [`idle_timeout`](Self::idle_timeout).
    pub read_deadline: Option<Duration>,
}

impl ServerConfig {
    /// How long a freshly accepted socket may take to reveal its dialect
    /// (the 4-byte sniff) before the server hangs up on it: the tighter of
    /// [`idle_timeout`](Self::idle_timeout) (the peer has sent nothing yet)
    /// and [`read_deadline`](Self::read_deadline) (a partial sniff is a
    /// started read). `None` — wait forever — only when both guards are
    /// disabled.
    pub fn sniff_timeout(&self) -> Option<Duration> {
        match (self.idle_timeout, self.read_deadline) {
            (Some(idle), Some(read)) => Some(idle.min(read)),
            (idle, read) => idle.or(read),
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_frame_len: MAX_FRAME_LEN,
            retry_after_ms: 25,
            max_connections: 256,
            max_inflight_per_conn: 128,
            idle_timeout: Some(Duration::from_secs(60)),
            read_deadline: Some(Duration::from_secs(10)),
        }
    }
}

/// Wire-level counters, exposed as `fg_server_*` families on `/metrics`.
#[derive(Default)]
pub(crate) struct ServerStats {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_rejected: AtomicU64,
    pub(crate) frames_in: AtomicU64,
    pub(crate) frames_out: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) retry_afters: AtomicU64,
    pub(crate) http_requests: AtomicU64,
    pub(crate) connections_timed_out: AtomicU64,
}

/// State shared by the accept loop and every connection thread.
pub(crate) struct ServerCore {
    pub(crate) service: ForkGraphService,
    pub(crate) handle: ServiceHandle,
    pub(crate) config: ServerConfig,
    pub(crate) stats: ServerStats,
    stop: AtomicBool,
    /// Concurrently served connections, for the accept-time cap. Incremented
    /// before a connection thread spawns, decremented on its teardown.
    live_conns: AtomicUsize,
    /// Monotonic connection IDs, keying `conns` entries for teardown removal.
    next_conn_id: AtomicU64,
    /// Read-half clones of every live connection, for the shutdown
    /// half-close. A connection removes its own entry on teardown; remaining
    /// entries are best-effort and dead sockets are ignored.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    /// Reader-thread handles (each reader joins its own writer). Finished
    /// handles are pruned whenever a new connection spawns, so a long-lived
    /// server's list tracks live connections, not its accept history.
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerCore {
    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// A running front door. Dropping it (or calling [`shutdown`]) drains
/// connections and stops the underlying service.
///
/// [`shutdown`]: ForkGraphServer::shutdown
pub struct ForkGraphServer {
    core: Option<Arc<ServerCore>>,
    accept_thread: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl ForkGraphServer {
    /// Bind `config.addr` and start serving `service` over it. The server
    /// takes ownership of the service so shutdown can drain and stop it.
    pub fn start(service: ForkGraphService, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let handle = service.handle();
        let core = Arc::new(ServerCore {
            service,
            handle,
            config,
            stats: ServerStats::default(),
            stop: AtomicBool::new(false),
            live_conns: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
        });

        let accept_core = Arc::clone(&core);
        let accept_thread = std::thread::Builder::new()
            .name("fg-server-accept".into())
            .spawn(move || accept_loop(accept_core, listener))?;

        Ok(ForkGraphServer { core: Some(core), accept_thread: Some(accept_thread), local_addr })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A cloneable in-process submission handle to the served service —
    /// handy for oracles that must bypass the wire.
    pub fn handle(&self) -> ServiceHandle {
        self.core.as_ref().expect("server running").handle.clone()
    }

    /// Point-in-time service metrics (same snapshot `/metrics` exposes).
    pub fn metrics(&self) -> fg_metrics::ServiceSnapshot {
        self.core.as_ref().expect("server running").handle.metrics()
    }

    /// Stop admitting new queries while letting everything in flight finish.
    /// Idempotent; [`shutdown`](Self::shutdown) calls it implicitly.
    pub fn begin_drain(&self) {
        self.core.as_ref().expect("server running").service.begin_drain();
    }

    /// Drain and stop: refuse new work, answer every outstanding
    /// correlation ID, close connections, and shut the service down.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(core) = self.core.take() else { return };

        // 1. No new connections.
        core.stop.store(true, Ordering::Release);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }

        // 2. No new queries; in-flight tickets keep resolving.
        core.service.begin_drain();

        // 3. Half-close every connection: readers see EOF and wind down;
        //    writers drain their in-flight tickets first.
        for (_, conn) in core.conns.lock().iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }

        // 4. Join connection threads, then stop the service.
        let threads: Vec<_> = core.conn_threads.lock().drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }

        // If a straggler thread still holds the Arc, the service's own Drop
        // will stop it when the last clone dies.
        if let Ok(core) = Arc::try_unwrap(core) {
            core.service.shutdown();
        }
    }
}

impl Drop for ForkGraphServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(core: Arc<ServerCore>, listener: TcpListener) {
    while !core.stopping() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let live = core.live_conns.load(Ordering::Acquire);
                if live >= core.config.max_connections {
                    // Over-cap: one retry-after frame, no thread. The flood
                    // costs the server a short write, not a stack.
                    core.stats.connections_rejected.fetch_add(1, Ordering::Relaxed);
                    reject_connection(&core, stream, live);
                    continue;
                }
                core.stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                spawn_connection(&core, stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Transient accept failures (per-connection resets); keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Answer an over-cap peer with a connection-level retry-after and hang up.
/// Bounded: a peer that won't take the frame is abandoned, never waited on.
fn reject_connection(core: &ServerCore, stream: TcpStream, live: usize) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let frame = encode_response(&Response::RetryAfter {
        correlation: CONNECTION_CORRELATION,
        retry_after_ms: core.config.retry_after_ms,
        queue_depth: crate::conn::clamp_u32(live),
        capacity: crate::conn::clamp_u32(core.config.max_connections),
    });
    let mut writer = &stream;
    let _ = write_frame(&mut writer, &frame);
    let _ = writer.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Undoes a connection's accept-time bookkeeping when its thread ends, on
/// every exit path (sniff timeout, clean close, panic).
struct ConnGuard {
    core: Arc<ServerCore>,
    id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.core.conns.lock().retain(|(id, _)| *id != self.id);
        self.core.live_conns.fetch_sub(1, Ordering::AcqRel);
    }
}

fn spawn_connection(core: &Arc<ServerCore>, stream: TcpStream) {
    // Back to blocking I/O for the connection itself (the listener's
    // non-blocking flag is inherited on some platforms).
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let conn_id = core.next_conn_id.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        core.conns.lock().push((conn_id, clone));
    }
    core.live_conns.fetch_add(1, Ordering::AcqRel);
    let conn_core = Arc::clone(core);
    let spawned = std::thread::Builder::new().name("fg-server-conn".into()).spawn(move || {
        let _guard = ConnGuard { core: Arc::clone(&conn_core), id: conn_id };
        let _ = stream.set_read_timeout(conn_core.config.sniff_timeout());
        let mut first = [0u8; 4];
        let mut filled = 0;
        // Read exactly 4 bytes to classify the dialect. HTTP request lines
        // are always longer than 4 bytes, so this never stalls a scraper.
        while filled < first.len() {
            match (&stream).read(&mut first[filled..]) {
                Ok(0) => return,
                Ok(n) => filled += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    // Sniff deadline: the peer never revealed its dialect.
                    conn_core.stats.connections_timed_out.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(_) => return, // reset
            }
        }
        let _ = stream.set_read_timeout(None);
        if first == MAGIC {
            crate::conn::run_binary_connection(conn_core, stream);
        } else {
            crate::http::run_http_connection(&conn_core, stream, &first);
        }
    });
    match spawned {
        Ok(handle) => {
            let mut threads = core.conn_threads.lock();
            // Prune handles whose connections already wound down (finished
            // threads need no join; dropping detaches them post-mortem).
            threads.retain(|thread| !thread.is_finished());
            threads.push(handle);
        }
        Err(_) => {
            // The thread never ran, so its guard never will: undo here.
            core.conns.lock().retain(|(id, _)| *id != conn_id);
            core.live_conns.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniff_timeout_is_the_tighter_of_the_two_guards() {
        let mut config = ServerConfig {
            idle_timeout: Some(Duration::from_secs(60)),
            read_deadline: Some(Duration::from_secs(10)),
            ..ServerConfig::default()
        };
        assert_eq!(config.sniff_timeout(), Some(Duration::from_secs(10)));

        config.read_deadline = None;
        assert_eq!(config.sniff_timeout(), Some(Duration::from_secs(60)));

        config.idle_timeout = None;
        config.read_deadline = Some(Duration::from_secs(3));
        assert_eq!(config.sniff_timeout(), Some(Duration::from_secs(3)));

        config.read_deadline = None;
        assert_eq!(config.sniff_timeout(), None);
    }
}
