//! The front door itself: a threaded TCP listener multiplexing two dialects
//! on one port.
//!
//! Each accepted socket is *sniffed*: a peer that opens with the 4-byte
//! [`MAGIC`](crate::protocol::MAGIC) speaks the binary query protocol and
//! gets a reader/writer thread pair ([`crate::conn`]); anything else is
//! treated as an HTTP/1.1 scraper and answered by [`crate::http`]. One
//! listener therefore serves queries, `/metrics`, `/healthz`, and `/trace`.
//!
//! Shutdown is a drain, not a guillotine:
//!
//! 1. stop accepting new connections,
//! 2. [`ForkGraphService::begin_drain`] — new submits are shed with a typed
//!    `ShuttingDown` error while everything already admitted keeps running,
//! 3. half-close (`Shutdown::Read`) every open connection so readers wind
//!    down while writers flush each outstanding correlation ID,
//! 4. join connection threads, then shut the service itself down.
//!
//! Every correlation admitted before step 2 is *answered* — resolved or
//! rejected — before the socket closes.

use std::io::{ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fg_service::{ForkGraphService, ServiceHandle};
use parking_lot::Mutex;

use crate::framing::MAX_FRAME_LEN;
use crate::protocol::MAGIC;

/// Accept-loop poll interval while checking the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How long a freshly accepted socket may take to reveal its dialect before
/// the server hangs up on it.
const SNIFF_TIMEOUT: Duration = Duration::from_secs(5);

/// Tuning for [`ForkGraphServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind. Port `0` picks an ephemeral port — read it back via
    /// [`ForkGraphServer::local_addr`].
    pub addr: String,
    /// Per-frame body cap (both directions). Oversized frames are discarded
    /// and answered with a typed error; the connection survives.
    pub max_frame_len: usize,
    /// Backoff hint carried by retry-after frames when admission control
    /// sheds a query.
    pub retry_after_ms: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_frame_len: MAX_FRAME_LEN,
            retry_after_ms: 25,
        }
    }
}

/// Wire-level counters, exposed as `fg_server_*` families on `/metrics`.
#[derive(Default)]
pub(crate) struct ServerStats {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) frames_in: AtomicU64,
    pub(crate) frames_out: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) retry_afters: AtomicU64,
    pub(crate) http_requests: AtomicU64,
}

/// State shared by the accept loop and every connection thread.
pub(crate) struct ServerCore {
    pub(crate) service: ForkGraphService,
    pub(crate) handle: ServiceHandle,
    pub(crate) config: ServerConfig,
    pub(crate) stats: ServerStats,
    stop: AtomicBool,
    /// Read-half clones of every live connection, for the shutdown
    /// half-close. Entries are best-effort; dead sockets are ignored.
    conns: Mutex<Vec<TcpStream>>,
    /// Reader-thread handles (each reader joins its own writer).
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerCore {
    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// A running front door. Dropping it (or calling [`shutdown`]) drains
/// connections and stops the underlying service.
///
/// [`shutdown`]: ForkGraphServer::shutdown
pub struct ForkGraphServer {
    core: Option<Arc<ServerCore>>,
    accept_thread: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl ForkGraphServer {
    /// Bind `config.addr` and start serving `service` over it. The server
    /// takes ownership of the service so shutdown can drain and stop it.
    pub fn start(service: ForkGraphService, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let handle = service.handle();
        let core = Arc::new(ServerCore {
            service,
            handle,
            config,
            stats: ServerStats::default(),
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
        });

        let accept_core = Arc::clone(&core);
        let accept_thread = std::thread::Builder::new()
            .name("fg-server-accept".into())
            .spawn(move || accept_loop(accept_core, listener))?;

        Ok(ForkGraphServer { core: Some(core), accept_thread: Some(accept_thread), local_addr })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A cloneable in-process submission handle to the served service —
    /// handy for oracles that must bypass the wire.
    pub fn handle(&self) -> ServiceHandle {
        self.core.as_ref().expect("server running").handle.clone()
    }

    /// Point-in-time service metrics (same snapshot `/metrics` exposes).
    pub fn metrics(&self) -> fg_metrics::ServiceSnapshot {
        self.core.as_ref().expect("server running").handle.metrics()
    }

    /// Stop admitting new queries while letting everything in flight finish.
    /// Idempotent; [`shutdown`](Self::shutdown) calls it implicitly.
    pub fn begin_drain(&self) {
        self.core.as_ref().expect("server running").service.begin_drain();
    }

    /// Drain and stop: refuse new work, answer every outstanding
    /// correlation ID, close connections, and shut the service down.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(core) = self.core.take() else { return };

        // 1. No new connections.
        core.stop.store(true, Ordering::Release);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }

        // 2. No new queries; in-flight tickets keep resolving.
        core.service.begin_drain();

        // 3. Half-close every connection: readers see EOF and wind down;
        //    writers drain their in-flight tickets first.
        for conn in core.conns.lock().iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }

        // 4. Join connection threads, then stop the service.
        let threads: Vec<_> = core.conn_threads.lock().drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }

        // If a straggler thread still holds the Arc, the service's own Drop
        // will stop it when the last clone dies.
        if let Ok(core) = Arc::try_unwrap(core) {
            core.service.shutdown();
        }
    }
}

impl Drop for ForkGraphServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(core: Arc<ServerCore>, listener: TcpListener) {
    while !core.stopping() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                core.stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                spawn_connection(&core, stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Transient accept failures (per-connection resets); keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn spawn_connection(core: &Arc<ServerCore>, stream: TcpStream) {
    // Back to blocking I/O for the connection itself (the listener's
    // non-blocking flag is inherited on some platforms).
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    if let Ok(clone) = stream.try_clone() {
        core.conns.lock().push(clone);
    }
    let conn_core = Arc::clone(core);
    let spawned = std::thread::Builder::new().name("fg-server-conn".into()).spawn(move || {
        let _ = stream.set_read_timeout(Some(SNIFF_TIMEOUT));
        let mut first = [0u8; 4];
        let mut filled = 0;
        // Read exactly 4 bytes to classify the dialect. HTTP request lines
        // are always longer than 4 bytes, so this never stalls a scraper.
        while filled < first.len() {
            match (&stream).read(&mut first[filled..]) {
                Ok(0) => return,
                Ok(n) => filled += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return, // sniff timeout or reset
            }
        }
        let _ = stream.set_read_timeout(None);
        if first == MAGIC {
            crate::conn::run_binary_connection(conn_core, stream);
        } else {
            crate::http::run_http_connection(&conn_core, stream, &first);
        }
    });
    if let Ok(handle) = spawned {
        core.conn_threads.lock().push(handle);
    }
}
