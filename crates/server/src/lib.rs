//! # fg-server — a network front door for ForkGraph-rs
//!
//! Everything below this crate is in-process: the engine forks queries, the
//! service batches them, the registry resolves kernels. This crate puts a
//! socket in front of it all — a threaded TCP server speaking a hand-rolled,
//! length-prefixed binary protocol whose frames deserialize straight into
//! [`fg_service::Query`] builder calls, plus a minimal HTTP/1.1 GET surface
//! (on the *same* listener, dialect-sniffed per connection) serving
//! `/metrics`, `/healthz`, and `/trace`.
//!
//! Design rules, in order:
//!
//! 1. **The wire adds no semantics.** A frame is a `Query`; the response is
//!    that query's result, error, or a retry-after. Admission control,
//!    caching, batching, and kernel resolution all happen in `fg-service`,
//!    identically for local and remote callers.
//! 2. **Backpressure sheds queries, not clients.** A saturated service
//!    answers with a retry-after frame carrying the observed queue depth;
//!    the connection survives.
//! 3. **Garbage costs one error, not the connection.** Length-prefixed
//!    framing keeps the stream self-synchronising: malformed bodies and
//!    oversized frames get typed error frames and the reader stays in sync.
//! 4. **Shutdown answers everything.** Draining stops admission first, then
//!    every already-admitted correlation ID is resolved or rejected before
//!    its socket closes.
//!
//! ```no_run
//! use fg_server::{ForkGraphServer, Request, Response, ServerConfig, WireClient, WirePayload};
//! # fn demo(service: fg_service::ForkGraphService) -> Result<(), Box<dyn std::error::Error>> {
//! let server = ForkGraphServer::start(service, ServerConfig::default())?;
//! let mut client = WireClient::connect(server.local_addr())?;
//! let response = client.call(&Request::new(1, "sssp", 0), |_| {})?;
//! if let Response::Result { payload: WirePayload::U64s(dist), .. } = response {
//!     assert_eq!(dist[0], 0);
//! }
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod client;
mod conn;
mod http;
mod server;

pub mod error;
pub mod framing;
pub mod protocol;

pub use client::WireClient;
pub use error::{ClientError, FrameReadError, ProtocolError};
pub use fg_service::EdgeMutation;
pub use protocol::{
    ClientFrame, MutateRequest, Request, Response, WireErrorCode, WirePayload,
    CONNECTION_CORRELATION, MAGIC,
};
pub use server::{ForkGraphServer, ServerConfig};
