//! A blocking wire client: the reference implementation of the protocol's
//! peer side, used by the examples, the acceptance tests, and the fg-bench
//! load generator.
//!
//! The client supports **pipelining**: [`send`](WireClient::send) many
//! requests (each under its own correlation ID), then [`recv`](WireClient::recv)
//! responses as the server finishes them — possibly out of submission order.
//! [`call`](WireClient::call) wraps the one-at-a-time case.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use fg_service::EdgeMutation;

use crate::error::ClientError;
use crate::framing::{read_frame, write_frame, MAX_FRAME_LEN};
use crate::protocol::{
    decode_response, encode_mutate, encode_request, MutateRequest, Request, Response, MAGIC,
};

/// A blocking connection to a [`ForkGraphServer`](crate::ForkGraphServer).
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_correlation: u32,
    max_frame_len: usize,
}

impl WireClient {
    /// Connect and announce the binary dialect (the [`MAGIC`] bytes).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let mut writer = BufWriter::new(stream);
        writer.write_all(&MAGIC)?;
        Ok(WireClient {
            reader: BufReader::new(read_half),
            writer,
            next_correlation: 1,
            max_frame_len: MAX_FRAME_LEN,
        })
    }

    /// The next correlation ID [`send`](Self::send) will assign.
    pub fn peek_correlation(&self) -> u32 {
        self.next_correlation
    }

    /// Queue `kernel(source)` with no parameters; returns the correlation ID
    /// to match the response against. Call [`flush`](Self::flush) before
    /// blocking on [`recv`](Self::recv).
    pub fn send(&mut self, kernel: &str, source: u32) -> Result<u32, ClientError> {
        let correlation = self.next_correlation;
        let request = Request::new(correlation, kernel, source);
        self.send_request(&request)?;
        Ok(correlation)
    }

    /// Queue a fully built request (caller picks the correlation ID; `0` is
    /// reserved and will be rejected by the server).
    pub fn send_request(&mut self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &encode_request(request))?;
        // Client-assigned IDs may race ahead of ours; stay strictly above
        // both so `send` never reuses a live correlation.
        self.next_correlation =
            self.next_correlation.max(request.correlation).wrapping_add(1).max(1);
        Ok(())
    }

    /// Queue one edge mutation; returns the correlation ID whose
    /// acknowledgement (a [`WirePayload::Version`] result frame, or a typed
    /// error) to match against. Call [`flush`](Self::flush) before blocking
    /// on [`recv`](Self::recv).
    ///
    /// [`WirePayload::Version`]: crate::protocol::WirePayload::Version
    pub fn send_mutation(&mut self, mutation: EdgeMutation) -> Result<u32, ClientError> {
        let correlation = self.next_correlation;
        self.send_mutate_request(&MutateRequest { correlation, mutation })?;
        Ok(correlation)
    }

    /// Queue a fully built mutate frame (caller picks the correlation ID).
    pub fn send_mutate_request(&mut self, request: &MutateRequest) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &encode_mutate(request))?;
        self.next_correlation =
            self.next_correlation.max(request.correlation).wrapping_add(1).max(1);
        Ok(())
    }

    /// One mutation round trip: send, flush, and wait for the
    /// acknowledgement, surfacing out-of-order responses to earlier
    /// pipelined requests through `stray`.
    pub fn mutate(
        &mut self,
        mutation: EdgeMutation,
        mut stray: impl FnMut(Response),
    ) -> Result<Response, ClientError> {
        let correlation = self.send_mutation(mutation)?;
        self.flush()?;
        loop {
            let response = self.recv()?;
            if response.correlation() == correlation {
                return Ok(response);
            }
            stray(response);
        }
    }

    /// Push all queued frames onto the socket.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Block for the next response frame (any correlation).
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let body = read_frame(&mut self.reader, self.max_frame_len)?;
        Ok(decode_response(&body)?)
    }

    /// One round trip: send, flush, and wait for *this* request's response,
    /// surfacing any out-of-order responses to earlier pipelined requests
    /// through `stray`.
    pub fn call(
        &mut self,
        request: &Request,
        mut stray: impl FnMut(Response),
    ) -> Result<Response, ClientError> {
        self.send_request(request)?;
        self.flush()?;
        loop {
            let response = self.recv()?;
            if response.correlation() == request.correlation {
                return Ok(response);
            }
            stray(response);
        }
    }

    /// Send raw bytes as one frame — for tests that need to speak garbage.
    pub fn send_raw_frame(&mut self, body: &[u8]) -> Result<(), ClientError> {
        write_frame(&mut self.writer, body)?;
        Ok(())
    }
}
