//! Length-prefixed framing over a byte stream.
//!
//! Every message travels as `u32-LE body length` + `body`. The length prefix
//! is the protocol's self-synchronisation property: as long as the prefix of
//! a frame is intact, the receiver always knows where the *next* frame
//! starts, so a garbage body costs one typed error, never a desynchronised
//! connection. Oversized frames are **discarded in bounded chunks** rather
//! than buffered (a hostile 4 GiB length cannot allocate 4 GiB) and likewise
//! leave the stream in sync.

use std::io::{Read, Write};

use crate::error::FrameReadError;

/// Default cap on one frame body: 64 MiB, far above any real query or result
/// on the smoke-scale graphs, far below an allocation-of-death.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Write one frame (length prefix + body). Flushing is the caller's business
/// so pipelined writers can batch several frames per syscall.
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    writer.write_all(&(body.len() as u32).to_le_bytes())?;
    writer.write_all(body)
}

/// Read one frame body, enforcing `max_len`.
///
/// * Clean EOF before any header byte → [`FrameReadError::Closed`].
/// * EOF inside the header or body → [`FrameReadError::Truncated`].
/// * Declared length beyond `max_len` → the body is read **and discarded**
///   in 64 KiB chunks, then [`FrameReadError::Oversized`] — the stream stays
///   framed and the caller may answer with a typed error and keep reading.
pub fn read_frame(reader: &mut impl Read, max_len: usize) -> Result<Vec<u8>, FrameReadError> {
    let mut header = [0u8; 4];
    read_exact_or_eof(reader, &mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > max_len {
        discard(reader, len)?;
        return Err(FrameReadError::Oversized { len, max: max_len });
    }
    let mut body = vec![0u8; len];
    read_fully(reader, &mut body)?;
    Ok(body)
}

/// Like `read_exact`, but distinguishes "no bytes at all" (clean close) from
/// "some bytes then EOF" (truncation).
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameReadError::Closed),
            Ok(0) => return Err(FrameReadError::Truncated { missing: buf.len() - filled }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(())
}

/// `read_exact` with mid-body EOF mapped to [`FrameReadError::Truncated`].
fn read_fully(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(FrameReadError::Truncated { missing: buf.len() - filled }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(())
}

/// Read and drop `len` bytes in bounded chunks (oversized-frame recovery).
fn discard(reader: &mut impl Read, len: usize) -> Result<(), FrameReadError> {
    let mut scratch = [0u8; 64 * 1024];
    let mut left = len;
    while left > 0 {
        let want = left.min(scratch.len());
        match reader.read(&mut scratch[..want]) {
            Ok(0) => return Err(FrameReadError::Truncated { missing: left }),
            Ok(n) => left -= n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[7u8; 1000]).unwrap();
        let mut reader = wire.as_slice();
        assert_eq!(read_frame(&mut reader, MAX_FRAME_LEN).unwrap(), b"first");
        assert_eq!(read_frame(&mut reader, MAX_FRAME_LEN).unwrap(), b"");
        assert_eq!(read_frame(&mut reader, MAX_FRAME_LEN).unwrap(), vec![7u8; 1000]);
        assert!(matches!(read_frame(&mut reader, MAX_FRAME_LEN), Err(FrameReadError::Closed)));
    }

    #[test]
    fn clean_close_differs_from_mid_frame_truncation() {
        // EOF mid-header.
        let mut reader: &[u8] = &[1, 0];
        assert!(matches!(
            read_frame(&mut reader, MAX_FRAME_LEN),
            Err(FrameReadError::Truncated { missing: 2 })
        ));
        // EOF mid-body.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut reader = wire.as_slice();
        assert!(matches!(
            read_frame(&mut reader, MAX_FRAME_LEN),
            Err(FrameReadError::Truncated { missing: 2 })
        ));
    }

    #[test]
    fn oversized_frames_are_discarded_and_the_stream_stays_in_sync() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[9u8; 100]).unwrap(); // over a cap of 16
        write_frame(&mut wire, b"still here").unwrap();
        let mut reader = wire.as_slice();
        match read_frame(&mut reader, 16) {
            Err(FrameReadError::Oversized { len: 100, max: 16 }) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The oversized body was consumed: the next frame parses normally.
        assert_eq!(read_frame(&mut reader, 16).unwrap(), b"still here");
    }

    #[test]
    fn hostile_length_does_not_allocate() {
        // A 4 GiB-1 declared length with only garbage behind it: the reader
        // must not try to allocate the declared size.
        let mut wire = u32::MAX.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 32]);
        let mut reader = wire.as_slice();
        match read_frame(&mut reader, MAX_FRAME_LEN) {
            Err(FrameReadError::Truncated { .. }) => {} // ran out while discarding
            other => panic!("expected Truncated while discarding, got {other:?}"),
        }
    }
}
