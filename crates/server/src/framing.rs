//! Length-prefixed framing over a byte stream.
//!
//! Every message travels as `u32-LE body length` + `body`. The length prefix
//! is the protocol's self-synchronisation property: as long as the prefix of
//! a frame is intact, the receiver always knows where the *next* frame
//! starts, so a garbage body costs one typed error, never a desynchronised
//! connection. Oversized frames are **discarded in bounded chunks** rather
//! than buffered (a hostile 4 GiB length cannot allocate 4 GiB) and likewise
//! leave the stream in sync.

use std::io::{Read, Write};

use crate::error::FrameReadError;

/// Default cap on one frame body: 64 MiB, far above any real query or result
/// on the smoke-scale graphs, far below an allocation-of-death.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Write one frame (length prefix + body). Flushing is the caller's business
/// so pipelined writers can batch several frames per syscall.
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    writer.write_all(&(body.len() as u32).to_le_bytes())?;
    writer.write_all(body)
}

/// Read one frame body, enforcing `max_len`.
///
/// * Clean EOF before any header byte → [`FrameReadError::Closed`].
/// * EOF inside the header or body → [`FrameReadError::Truncated`].
/// * Declared length beyond `max_len` → the body is read **and discarded**
///   in 64 KiB chunks, then [`FrameReadError::Oversized`] — the stream stays
///   framed and the caller may answer with a typed error and keep reading.
/// * A read timeout (the stream has `set_read_timeout` configured) →
///   [`FrameReadError::TimedOut`], with `mid_frame` recording whether the
///   frame had started.
pub fn read_frame(reader: &mut impl Read, max_len: usize) -> Result<Vec<u8>, FrameReadError> {
    read_frame_hooked(reader, max_len, || {})
}

/// [`read_frame`] with an `on_frame_start` hook, invoked exactly once after
/// the first header byte of a frame arrives and before any further reads.
///
/// This is the seam the server's slow-loris guard threads through: the
/// connection reader waits at a frame boundary under a *generous* idle
/// timeout, then uses the hook to arm a *tight* read deadline for the rest
/// of the frame — a peer may be quiet between requests for as long as the
/// idle budget allows, but once it starts a frame it must finish it
/// promptly or time out `mid_frame` and forfeit the connection.
pub fn read_frame_hooked(
    reader: &mut impl Read,
    max_len: usize,
    on_frame_start: impl FnOnce(),
) -> Result<Vec<u8>, FrameReadError> {
    let mut header = [0u8; 4];
    read_exact_or_eof(reader, &mut header, on_frame_start)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > max_len {
        discard(reader, len)?;
        return Err(FrameReadError::Oversized { len, max: max_len });
    }
    let mut body = vec![0u8; len];
    read_fully(reader, &mut body)?;
    Ok(body)
}

/// Whether an I/O error is a read-timeout expiry. Unix sockets report
/// `WouldBlock` when an `SO_RCVTIMEO` deadline passes; Windows reports
/// `TimedOut` — both mean the same thing here.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Like `read_exact`, but distinguishes "no bytes at all" (clean close) from
/// "some bytes then EOF" (truncation), and fires `on_first_byte` when the
/// first byte lands.
fn read_exact_or_eof(
    reader: &mut impl Read,
    buf: &mut [u8],
    on_first_byte: impl FnOnce(),
) -> Result<(), FrameReadError> {
    let mut on_first_byte = Some(on_first_byte);
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameReadError::Closed),
            Ok(0) => return Err(FrameReadError::Truncated { missing: buf.len() - filled }),
            Ok(n) => {
                if let Some(hook) = on_first_byte.take() {
                    hook();
                }
                filled += n;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                return Err(FrameReadError::TimedOut { mid_frame: filled > 0 })
            }
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(())
}

/// `read_exact` with mid-body EOF mapped to [`FrameReadError::Truncated`].
fn read_fully(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(FrameReadError::Truncated { missing: buf.len() - filled }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => return Err(FrameReadError::TimedOut { mid_frame: true }),
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(())
}

/// Read and drop `len` bytes in bounded chunks (oversized-frame recovery).
fn discard(reader: &mut impl Read, len: usize) -> Result<(), FrameReadError> {
    let mut scratch = [0u8; 64 * 1024];
    let mut left = len;
    while left > 0 {
        let want = left.min(scratch.len());
        match reader.read(&mut scratch[..want]) {
            Ok(0) => return Err(FrameReadError::Truncated { missing: left }),
            Ok(n) => left -= n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => return Err(FrameReadError::TimedOut { mid_frame: true }),
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[7u8; 1000]).unwrap();
        let mut reader = wire.as_slice();
        assert_eq!(read_frame(&mut reader, MAX_FRAME_LEN).unwrap(), b"first");
        assert_eq!(read_frame(&mut reader, MAX_FRAME_LEN).unwrap(), b"");
        assert_eq!(read_frame(&mut reader, MAX_FRAME_LEN).unwrap(), vec![7u8; 1000]);
        assert!(matches!(read_frame(&mut reader, MAX_FRAME_LEN), Err(FrameReadError::Closed)));
    }

    #[test]
    fn clean_close_differs_from_mid_frame_truncation() {
        // EOF mid-header.
        let mut reader: &[u8] = &[1, 0];
        assert!(matches!(
            read_frame(&mut reader, MAX_FRAME_LEN),
            Err(FrameReadError::Truncated { missing: 2 })
        ));
        // EOF mid-body.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut reader = wire.as_slice();
        assert!(matches!(
            read_frame(&mut reader, MAX_FRAME_LEN),
            Err(FrameReadError::Truncated { missing: 2 })
        ));
    }

    #[test]
    fn oversized_frames_are_discarded_and_the_stream_stays_in_sync() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[9u8; 100]).unwrap(); // over a cap of 16
        write_frame(&mut wire, b"still here").unwrap();
        let mut reader = wire.as_slice();
        match read_frame(&mut reader, 16) {
            Err(FrameReadError::Oversized { len: 100, max: 16 }) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The oversized body was consumed: the next frame parses normally.
        assert_eq!(read_frame(&mut reader, 16).unwrap(), b"still here");
    }

    /// Yields its buffered bytes, then reports a read-timeout expiry forever
    /// (the shape a stalled socket with `SO_RCVTIMEO` presents).
    struct StallingReader {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for StallingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos < self.data.len() {
                let n = (self.data.len() - self.pos).min(buf.len());
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            } else {
                Err(std::io::ErrorKind::WouldBlock.into())
            }
        }
    }

    #[test]
    fn timeout_at_a_boundary_is_idle_but_inside_a_frame_is_mid_frame() {
        // No bytes at all: an idle peer, not a slow-loris.
        let mut idle = StallingReader { data: Vec::new(), pos: 0 };
        assert!(matches!(
            read_frame(&mut idle, MAX_FRAME_LEN),
            Err(FrameReadError::TimedOut { mid_frame: false })
        ));
        // A partial header, then silence: the frame started, so the stall is
        // mid-frame — unrecoverable without the remaining bytes.
        let mut loris = StallingReader { data: vec![5, 0], pos: 0 };
        assert!(matches!(
            read_frame(&mut loris, MAX_FRAME_LEN),
            Err(FrameReadError::TimedOut { mid_frame: true })
        ));
        // A complete header, partial body: likewise mid-frame.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut body_stall = StallingReader { data: wire, pos: 0 };
        assert!(matches!(
            read_frame(&mut body_stall, MAX_FRAME_LEN),
            Err(FrameReadError::TimedOut { mid_frame: true })
        ));
    }

    #[test]
    fn frame_start_hook_fires_once_per_frame_after_the_first_byte() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"one").unwrap();
        write_frame(&mut wire, b"two").unwrap();
        let mut reader = wire.as_slice();
        let mut fired = 0u32;
        assert_eq!(read_frame_hooked(&mut reader, MAX_FRAME_LEN, || fired += 1).unwrap(), b"one");
        assert_eq!(fired, 1);
        assert_eq!(read_frame_hooked(&mut reader, MAX_FRAME_LEN, || fired += 1).unwrap(), b"two");
        assert_eq!(fired, 2);
        // A timed-out boundary wait never starts a frame, so no hook call.
        let mut idle = StallingReader { data: Vec::new(), pos: 0 };
        let _ = read_frame_hooked(&mut idle, MAX_FRAME_LEN, || fired += 1);
        assert_eq!(fired, 2);
    }

    #[test]
    fn hostile_length_does_not_allocate() {
        // A 4 GiB-1 declared length with only garbage behind it: the reader
        // must not try to allocate the declared size.
        let mut wire = u32::MAX.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 32]);
        let mut reader = wire.as_slice();
        match read_frame(&mut reader, MAX_FRAME_LEN) {
            Err(FrameReadError::Truncated { .. }) => {} // ran out while discarding
            other => panic!("expected Truncated while discarding, got {other:?}"),
        }
    }
}
