//! The ForkGraph wire protocol: binary frames that deserialize straight into
//! [`Query::kernel`](fg_service::Query) builder calls.
//!
//! All integers are little-endian. A connection opens with the 4-byte magic
//! [`MAGIC`] (`"FGW1"` — ForkGraph Wire v1), after which both directions
//! carry length-prefixed frames ([`crate::framing`]). Frame bodies:
//!
//! | kind | direction | layout after the kind byte |
//! |------|-----------|-----------------------------|
//! | `1` request      | client → server | `u32 correlation`, `u16 len + utf8` kernel, `u32 source`, `u16 count` × (`u16 len + utf8` name, `u8 tag` + value) |
//! | `2` result       | server → client | `u32 correlation`, `u8 tag` + payload |
//! | `3` error        | server → client | `u32 correlation`, `u8 code`, `u32 len + utf8` message |
//! | `4` retry-after  | server → client | `u32 correlation`, `u32 retry_after_ms`, `u32 queue_depth`, `u32 capacity` |
//! | `5` mutate       | client → server | `u32 correlation`, `u8 op` (1 insert, 2 delete, 3 update-weight), `u32 u`, `u32 v`, `u32 w` (zero for delete) |
//!
//! A mutate frame is acknowledged with a result frame whose payload is the
//! graph version (tag `6`) that will first contain the mutation, or a typed
//! error ([`WireErrorCode::InvalidMutation`]).
//!
//! Parameter values mirror [`ParamValue`] exactly (tags: bool `0`, u64 `1`,
//! i64 `2`, f64-bits `3`, str `4`), so anything expressible through
//! `Query::param` is expressible on the wire — including parameters of
//! kernels registered after the server started.
//!
//! Correlation IDs are chosen by the client; `0` is reserved for
//! connection-level errors (a frame so broken the server could not read the
//! ID it should answer under). Responses may arrive **out of order** — that
//! is the point of the IDs: a connection can pipeline many in-flight
//! queries, and a cache hit overtakes a cold run.

use fg_service::{EdgeMutation, ParamValue, Query, QueryResult};
use forkgraph_core::kernels::{PprState, RwState};

use crate::error::ProtocolError;

/// Connection-opening magic: `"FGW1"`. Also how the shared listener tells a
/// binary-protocol client from an HTTP scraper — no HTTP method starts with
/// these bytes.
pub const MAGIC: [u8; 4] = *b"FGW1";

/// Correlation ID reserved for connection-level errors.
pub const CONNECTION_CORRELATION: u32 = 0;

const KIND_REQUEST: u8 = 1;
const KIND_RESULT: u8 = 2;
const KIND_ERROR: u8 = 3;
const KIND_RETRY_AFTER: u8 = 4;
const KIND_MUTATE: u8 = 5;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_UPDATE: u8 = 3;

/// One query as it travels the wire. Mirrors the [`Query`] builder: kernel
/// name, source vertex, typed parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen pipelining ID (`!= 0`); echoed on the response.
    pub correlation: u32,
    /// Registered kernel name.
    pub kernel: String,
    /// Source vertex the query forks from.
    pub source: u32,
    /// Typed parameters, mirroring [`ParamValue`].
    pub params: Vec<(String, ParamValue)>,
}

impl Request {
    /// Start a request for `kernel` forking from `source`.
    pub fn new(correlation: u32, kernel: impl Into<String>, source: u32) -> Self {
        Request { correlation, kernel: kernel.into(), source, params: Vec::new() }
    }

    /// Add one typed parameter (builder style).
    pub fn param(mut self, name: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.params.push((name.into(), value.into()));
        self
    }

    /// The in-process [`Query`] this request deserializes into — the whole
    /// wire layer funnels into the same builder path local callers use.
    pub fn to_query(&self) -> Query {
        let mut query = Query::kernel(self.kernel.as_str()).source(self.source);
        for (name, value) in &self.params {
            query = query.param(name.as_str(), value.clone());
        }
        query
    }
}

/// One edge mutation as it travels the wire; acknowledged with a
/// version-payload result frame under the same correlation ID.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutateRequest {
    /// Client-chosen pipelining ID (`!= 0`); echoed on the acknowledgement.
    pub correlation: u32,
    /// The mutation, in the service's own vocabulary — the wire adds no
    /// semantics here either.
    pub mutation: EdgeMutation,
}

/// A decoded client → server frame: either a query or a mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientFrame {
    /// A `1` request frame.
    Query(Request),
    /// A `5` mutate frame.
    Mutate(MutateRequest),
}

/// A query result's state, encoded for transport. Covers every built-in
/// kernel state plus the common custom-kernel shapes (`Vec` of fixed-width
/// numbers); a registered kernel whose state downcasts to none of these is
/// answered with [`WireErrorCode::UnsupportedResult`] instead of a panic.
#[derive(Clone, Debug, PartialEq)]
pub enum WirePayload {
    /// `Vec<u32>` states (BFS levels). Tag `1`.
    U32s(Vec<u32>),
    /// `Vec<u64>` states (SSSP distances — `Dist = u64` — and friends). Tag `2`.
    U64s(Vec<u64>),
    /// `Vec<f64>` states. Tag `3`.
    F64s(Vec<f64>),
    /// PPR state (estimates + residuals + push count). Tag `4`.
    Ppr {
        /// Dense PPR estimates.
        estimate: Vec<f64>,
        /// Dense residual mass.
        residual: Vec<f64>,
        /// Pushes performed.
        pushes: u64,
    },
    /// Random-walk state (visit counts). Tag `5`.
    Rw {
        /// Walker visits per vertex.
        visits: Vec<u64>,
    },
    /// Mutation acknowledgement: the graph version that will first contain
    /// the logged mutation. Tag `6`.
    Version(u64),
}

impl WirePayload {
    /// Encode a completed in-process result, or `None` when its state type
    /// has no wire representation.
    pub fn from_result(result: &QueryResult) -> Option<WirePayload> {
        if let Some(v) = result.downcast_ref::<Vec<u32>>() {
            return Some(WirePayload::U32s(v.clone()));
        }
        if let Some(v) = result.downcast_ref::<Vec<u64>>() {
            return Some(WirePayload::U64s(v.clone()));
        }
        if let Some(v) = result.downcast_ref::<Vec<f64>>() {
            return Some(WirePayload::F64s(v.clone()));
        }
        if let Some(p) = result.downcast_ref::<PprState>() {
            return Some(WirePayload::Ppr {
                estimate: p.estimate.clone(),
                residual: p.residual.clone(),
                pushes: p.pushes,
            });
        }
        if let Some(r) = result.downcast_ref::<RwState>() {
            return Some(WirePayload::Rw { visits: r.visits.clone() });
        }
        None
    }
}

/// Typed failure codes a server frame can carry; mirrors
/// [`fg_service::ServiceError`] (minus `Saturated`, which travels as a
/// dedicated retry-after frame — backpressure is flow control, not failure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WireErrorCode {
    /// The service is draining or shut down.
    ShuttingDown = 1,
    /// Source vertex out of range for the served graph.
    InvalidSource = 2,
    /// The request named no source (unreachable from this codec, which
    /// always carries one; kept for parity with the service error).
    MissingSource = 3,
    /// No kernel registered under the requested name.
    UnknownKernel = 4,
    /// The kernel's factory rejected the parameters.
    InvalidParams = 5,
    /// The engine failed while running the query's batch.
    EngineFailure = 6,
    /// The kernel ran but its state type has no wire encoding.
    UnsupportedResult = 7,
    /// The peer sent a frame this side could not decode (correlation `0`
    /// when the ID itself was unreadable).
    Protocol = 8,
    /// The mutation was rejected before it reached the log (endpoint out of
    /// range, self-loop).
    InvalidMutation = 9,
}

impl WireErrorCode {
    fn from_u8(code: u8) -> Result<Self, ProtocolError> {
        Ok(match code {
            1 => WireErrorCode::ShuttingDown,
            2 => WireErrorCode::InvalidSource,
            3 => WireErrorCode::MissingSource,
            4 => WireErrorCode::UnknownKernel,
            5 => WireErrorCode::InvalidParams,
            6 => WireErrorCode::EngineFailure,
            7 => WireErrorCode::UnsupportedResult,
            8 => WireErrorCode::Protocol,
            9 => WireErrorCode::InvalidMutation,
            other => return Err(ProtocolError::UnknownErrorCode(other)),
        })
    }
}

/// One server → client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The query completed; `payload` is its encoded state.
    Result {
        /// Echoed request ID.
        correlation: u32,
        /// Encoded kernel state.
        payload: WirePayload,
    },
    /// The query failed with a typed error.
    Error {
        /// Echoed request ID (`0` = connection-level).
        correlation: u32,
        /// Typed failure class.
        code: WireErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Admission control shed the query: back off `retry_after_ms` and
    /// resubmit. The connection itself stays healthy — saturation never
    /// costs a client its socket.
    RetryAfter {
        /// Echoed request ID.
        correlation: u32,
        /// Suggested backoff.
        retry_after_ms: u32,
        /// Queue depth observed at rejection.
        queue_depth: u32,
        /// Configured queue capacity.
        capacity: u32,
    },
}

impl Response {
    /// The correlation ID this response answers.
    pub fn correlation(&self) -> u32 {
        match self {
            Response::Result { correlation, .. }
            | Response::Error { correlation, .. }
            | Response::RetryAfter { correlation, .. } => *correlation,
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_str16(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize) as u16;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

fn put_str32(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_param(out: &mut Vec<u8>, value: &ParamValue) {
    match value {
        ParamValue::Bool(v) => {
            out.push(0);
            out.push(*v as u8);
        }
        ParamValue::U64(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        ParamValue::I64(v) => {
            out.push(2);
            out.extend_from_slice(&v.to_le_bytes());
        }
        ParamValue::F64(v) => {
            out.push(3);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        ParamValue::Str(v) => {
            out.push(4);
            put_str32(out, v);
        }
    }
}

/// Serialize a request into a frame body.
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + request.kernel.len());
    out.push(KIND_REQUEST);
    out.extend_from_slice(&request.correlation.to_le_bytes());
    put_str16(&mut out, &request.kernel);
    out.extend_from_slice(&request.source.to_le_bytes());
    out.extend_from_slice(&(request.params.len().min(u16::MAX as usize) as u16).to_le_bytes());
    for (name, value) in request.params.iter().take(u16::MAX as usize) {
        put_str16(&mut out, name);
        put_param(&mut out, value);
    }
    out
}

/// Serialize a mutate frame body.
pub fn encode_mutate(request: &MutateRequest) -> Vec<u8> {
    let (op, u, v, w) = match request.mutation {
        EdgeMutation::Insert { u, v, w } => (OP_INSERT, u, v, w),
        EdgeMutation::Delete { u, v } => (OP_DELETE, u, v, 0),
        EdgeMutation::UpdateWeight { u, v, w } => (OP_UPDATE, u, v, w),
    };
    let mut out = Vec::with_capacity(18);
    out.push(KIND_MUTATE);
    out.extend_from_slice(&request.correlation.to_le_bytes());
    out.push(op);
    out.extend_from_slice(&u.to_le_bytes());
    out.extend_from_slice(&v.to_le_bytes());
    out.extend_from_slice(&w.to_le_bytes());
    out
}

fn put_u32s(out: &mut Vec<u8>, values: &[u32]) {
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u64s(out: &mut Vec<u8>, values: &[u64]) {
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_f64s(out: &mut Vec<u8>, values: &[f64]) {
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Serialize a response into a frame body.
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match response {
        Response::Result { correlation, payload } => {
            out.push(KIND_RESULT);
            out.extend_from_slice(&correlation.to_le_bytes());
            match payload {
                WirePayload::U32s(v) => {
                    out.push(1);
                    put_u32s(&mut out, v);
                }
                WirePayload::U64s(v) => {
                    out.push(2);
                    put_u64s(&mut out, v);
                }
                WirePayload::F64s(v) => {
                    out.push(3);
                    put_f64s(&mut out, v);
                }
                WirePayload::Ppr { estimate, residual, pushes } => {
                    out.push(4);
                    put_f64s(&mut out, estimate);
                    put_f64s(&mut out, residual);
                    out.extend_from_slice(&pushes.to_le_bytes());
                }
                WirePayload::Rw { visits } => {
                    out.push(5);
                    put_u64s(&mut out, visits);
                }
                WirePayload::Version(version) => {
                    out.push(6);
                    out.extend_from_slice(&version.to_le_bytes());
                }
            }
        }
        Response::Error { correlation, code, message } => {
            out.push(KIND_ERROR);
            out.extend_from_slice(&correlation.to_le_bytes());
            out.push(*code as u8);
            put_str32(&mut out, message);
        }
        Response::RetryAfter { correlation, retry_after_ms, queue_depth, capacity } => {
            out.push(KIND_RETRY_AFTER);
            out.extend_from_slice(&correlation.to_le_bytes());
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
            out.extend_from_slice(&queue_depth.to_le_bytes());
            out.extend_from_slice(&capacity.to_le_bytes());
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked reader over a frame body. Every getter returns a typed
/// [`ProtocolError`] instead of slicing out of range.
struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Self {
        Cursor { body, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.body.len() - self.pos
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated {
                field,
                expected: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2, field)?.try_into().expect("sized take")))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4, field)?.try_into().expect("sized take")))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8, field)?.try_into().expect("sized take")))
    }

    fn str16(&mut self, field: &'static str) -> Result<String, ProtocolError> {
        let len = self.u16(field)? as usize;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8 { field })
    }

    fn str32(&mut self, field: &'static str) -> Result<String, ProtocolError> {
        let len = self.u32(field)? as usize;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8 { field })
    }

    /// Validate `count * width <= remaining` *before* any allocation.
    fn checked_count(
        &self,
        count: u64,
        width: usize,
        field: &'static str,
    ) -> Result<usize, ProtocolError> {
        let need = count.checked_mul(width as u64);
        match need {
            Some(need) if need <= self.remaining() as u64 => Ok(count as usize),
            _ => Err(ProtocolError::BadCount { field, count, remaining: self.remaining() }),
        }
    }

    fn u32s(&mut self, field: &'static str) -> Result<Vec<u32>, ProtocolError> {
        let count = self.u64(field)?;
        let count = self.checked_count(count, 4, field)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u32(field)?);
        }
        Ok(out)
    }

    fn u64s(&mut self, field: &'static str) -> Result<Vec<u64>, ProtocolError> {
        let count = self.u64(field)?;
        let count = self.checked_count(count, 8, field)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u64(field)?);
        }
        Ok(out)
    }

    fn f64s(&mut self, field: &'static str) -> Result<Vec<f64>, ProtocolError> {
        Ok(self.u64s(field)?.into_iter().map(f64::from_bits).collect())
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.remaining() > 0 {
            return Err(ProtocolError::TrailingBytes { extra: self.remaining() });
        }
        Ok(())
    }
}

/// Decode any client → server frame body (query or mutation) — the server
/// reader's entry point.
pub fn decode_client_frame(body: &[u8]) -> Result<ClientFrame, ProtocolError> {
    match body.first() {
        Some(&KIND_MUTATE) => {
            let mut cursor = Cursor::new(body);
            let _ = cursor.u8("frame kind")?;
            let correlation = cursor.u32("correlation")?;
            let op = cursor.u8("mutation op")?;
            let u = cursor.u32("mutation u")?;
            let v = cursor.u32("mutation v")?;
            let w = cursor.u32("mutation w")?;
            cursor.finish()?;
            let mutation = match op {
                OP_INSERT => EdgeMutation::Insert { u, v, w },
                OP_DELETE => EdgeMutation::Delete { u, v },
                OP_UPDATE => EdgeMutation::UpdateWeight { u, v, w },
                other => return Err(ProtocolError::UnknownMutationOp(other)),
            };
            Ok(ClientFrame::Mutate(MutateRequest { correlation, mutation }))
        }
        _ => Ok(ClientFrame::Query(decode_request(body)?)),
    }
}

/// Decode a client → server *query* frame body. Strict: a mutate frame is an
/// [`ProtocolError::UnexpectedFrameKind`] here — callers that accept both
/// use [`decode_client_frame`].
pub fn decode_request(body: &[u8]) -> Result<Request, ProtocolError> {
    let mut cursor = Cursor::new(body);
    match cursor.u8("frame kind")? {
        KIND_REQUEST => {}
        kind @ (KIND_RESULT | KIND_ERROR | KIND_RETRY_AFTER | KIND_MUTATE) => {
            return Err(ProtocolError::UnexpectedFrameKind {
                got: kind,
                expected: "query requests",
            })
        }
        other => return Err(ProtocolError::UnknownFrameKind(other)),
    }
    let correlation = cursor.u32("correlation")?;
    let kernel = cursor.str16("kernel name")?;
    let source = cursor.u32("source")?;
    let count = cursor.u16("param count")? as usize;
    let mut params = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let name = cursor.str16("param name")?;
        let value = match cursor.u8("param tag")? {
            0 => ParamValue::Bool(cursor.u8("bool param")? != 0),
            1 => ParamValue::U64(cursor.u64("u64 param")?),
            2 => ParamValue::I64(cursor.u64("i64 param")? as i64),
            3 => ParamValue::F64(f64::from_bits(cursor.u64("f64 param")?)),
            4 => ParamValue::Str(cursor.str32("str param")?),
            other => return Err(ProtocolError::UnknownParamTag(other)),
        };
        params.push((name, value));
    }
    cursor.finish()?;
    Ok(Request { correlation, kernel, source, params })
}

/// Decode a server → client frame body.
pub fn decode_response(body: &[u8]) -> Result<Response, ProtocolError> {
    let mut cursor = Cursor::new(body);
    let kind = cursor.u8("frame kind")?;
    let response = match kind {
        KIND_RESULT => {
            let correlation = cursor.u32("correlation")?;
            let payload = match cursor.u8("payload tag")? {
                1 => WirePayload::U32s(cursor.u32s("u32 payload")?),
                2 => WirePayload::U64s(cursor.u64s("u64 payload")?),
                3 => WirePayload::F64s(cursor.f64s("f64 payload")?),
                4 => WirePayload::Ppr {
                    estimate: cursor.f64s("ppr estimates")?,
                    residual: cursor.f64s("ppr residuals")?,
                    pushes: cursor.u64("ppr pushes")?,
                },
                5 => WirePayload::Rw { visits: cursor.u64s("rw visits")? },
                6 => WirePayload::Version(cursor.u64("graph version")?),
                other => return Err(ProtocolError::UnknownPayloadTag(other)),
            };
            Response::Result { correlation, payload }
        }
        KIND_ERROR => Response::Error {
            correlation: cursor.u32("correlation")?,
            code: WireErrorCode::from_u8(cursor.u8("error code")?)?,
            message: cursor.str32("error message")?,
        },
        KIND_RETRY_AFTER => Response::RetryAfter {
            correlation: cursor.u32("correlation")?,
            retry_after_ms: cursor.u32("retry_after_ms")?,
            queue_depth: cursor.u32("queue depth")?,
            capacity: cursor.u32("queue capacity")?,
        },
        KIND_REQUEST | KIND_MUTATE => {
            return Err(ProtocolError::UnexpectedFrameKind { got: kind, expected: "responses" })
        }
        other => return Err(ProtocolError::UnknownFrameKind(other)),
    };
    cursor.finish()?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_with_every_param_type() {
        let request = Request::new(7, "ppr", 42)
            .param("epsilon", 1e-5)
            .param("cap", 10u64)
            .param("offset", -3i64)
            .param("exact", true)
            .param("label", "hot");
        let back = decode_request(&encode_request(&request)).unwrap();
        assert_eq!(back, request);
        // And it deserializes straight into the in-process builder.
        let query = back.to_query();
        assert_eq!(query.kernel_name(), "ppr");
        assert_eq!(query.source_vertex(), Some(42));
        assert_eq!(query.params().get("epsilon"), Some(&ParamValue::F64(1e-5)));
        assert_eq!(query.params().get("label"), Some(&ParamValue::Str("hot".into())));
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Result { correlation: 1, payload: WirePayload::U32s(vec![0, 1, u32::MAX]) },
            Response::Result { correlation: 2, payload: WirePayload::U64s(vec![u64::MAX, 0]) },
            Response::Result { correlation: 3, payload: WirePayload::F64s(vec![0.5, f64::NAN]) },
            Response::Result {
                correlation: 4,
                payload: WirePayload::Ppr {
                    estimate: vec![0.25, 0.75],
                    residual: vec![0.0, 1e-9],
                    pushes: 99,
                },
            },
            Response::Result { correlation: 5, payload: WirePayload::Rw { visits: vec![3, 0, 7] } },
            Response::Error {
                correlation: 6,
                code: WireErrorCode::UnknownKernel,
                message: "no kernel \"nope\"".into(),
            },
            Response::RetryAfter {
                correlation: 7,
                retry_after_ms: 25,
                queue_depth: 128,
                capacity: 128,
            },
        ];
        for case in cases {
            let back = decode_response(&encode_response(&case)).unwrap();
            // NaN-carrying payloads compare by bits below; everything else
            // by value.
            match (&back, &case) {
                (
                    Response::Result { payload: WirePayload::F64s(a), .. },
                    Response::Result { payload: WirePayload::F64s(b), .. },
                ) => {
                    let a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                    let b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(a, b);
                }
                _ => assert_eq!(back, case),
            }
        }
    }

    #[test]
    fn mutate_frames_round_trip_and_stay_out_of_the_query_decoder() {
        let cases = [
            EdgeMutation::Insert { u: 3, v: 9, w: 17 },
            EdgeMutation::Delete { u: 1, v: 2 },
            EdgeMutation::UpdateWeight { u: 0, v: u32::MAX, w: 1 },
        ];
        for mutation in cases {
            let request = MutateRequest { correlation: 11, mutation };
            let body = encode_mutate(&request);
            assert_eq!(decode_client_frame(&body).unwrap(), ClientFrame::Mutate(request));
            // The strict query decoder refuses it with a typed error.
            assert!(matches!(
                decode_request(&body),
                Err(ProtocolError::UnexpectedFrameKind { got: 5, .. })
            ));
            // And it is not a response either.
            assert!(matches!(
                decode_response(&body),
                Err(ProtocolError::UnexpectedFrameKind { got: 5, .. })
            ));
        }
        // Query frames pass through decode_client_frame unchanged.
        let query = Request::new(4, "sssp", 2).param("x", 1u64);
        assert_eq!(
            decode_client_frame(&encode_request(&query)).unwrap(),
            ClientFrame::Query(query)
        );
    }

    #[test]
    fn version_payload_round_trips() {
        let ack = Response::Result { correlation: 9, payload: WirePayload::Version(42) };
        assert_eq!(decode_response(&encode_response(&ack)).unwrap(), ack);
    }

    #[test]
    fn bad_mutation_ops_and_truncated_mutates_are_typed_errors() {
        let mut body = encode_mutate(&MutateRequest {
            correlation: 5,
            mutation: EdgeMutation::Insert { u: 1, v: 2, w: 3 },
        });
        body[5] = 0x7F; // the op byte
        assert!(matches!(decode_client_frame(&body), Err(ProtocolError::UnknownMutationOp(0x7F))));
        let truncated = &body[..9];
        assert!(matches!(decode_client_frame(truncated), Err(ProtocolError::Truncated { .. })));
    }

    #[test]
    fn direction_mixups_are_typed_errors() {
        let request = encode_request(&Request::new(1, "sssp", 0));
        assert!(matches!(
            decode_response(&request),
            Err(ProtocolError::UnexpectedFrameKind { got: 1, .. })
        ));
        let response = encode_response(&Response::RetryAfter {
            correlation: 1,
            retry_after_ms: 1,
            queue_depth: 1,
            capacity: 1,
        });
        assert!(matches!(
            decode_request(&response),
            Err(ProtocolError::UnexpectedFrameKind { got: 4, .. })
        ));
    }

    #[test]
    fn hostile_element_counts_are_rejected_before_allocation() {
        // A result frame claiming u64::MAX elements in a tiny body.
        let mut body = vec![KIND_RESULT];
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(2); // u64 payload
        body.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_response(&body),
            Err(ProtocolError::BadCount { count: u64::MAX, .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = encode_request(&Request::new(1, "bfs", 5));
        body.push(0xAB);
        assert!(matches!(decode_request(&body), Err(ProtocolError::TrailingBytes { extra: 1 })));
    }

    #[test]
    fn empty_and_unknown_kinds_are_typed_errors() {
        assert!(matches!(decode_request(&[]), Err(ProtocolError::Truncated { .. })));
        assert!(matches!(decode_request(&[0xEE]), Err(ProtocolError::UnknownFrameKind(0xEE))));
        assert!(matches!(decode_response(&[0xEE]), Err(ProtocolError::UnknownFrameKind(0xEE))));
    }
}
