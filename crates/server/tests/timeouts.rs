//! Wire-level timeout acceptance, over real loopback sockets:
//!
//! 1. A slow-loris peer — one that *starts* a frame and then stalls — is
//!    reaped by the read deadline, while a healthy connection sharing the
//!    server keeps getting answers before, during, and after the reap.
//! 2. A binary connection that goes quiet between frames is reaped once the
//!    idle budget runs out.
//! 3. Disabling both guards restores the patient pre-timeout behaviour.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_graph::gen;
use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_server::{ForkGraphServer, Request, Response, ServerConfig, WireClient, WirePayload, MAGIC};
use fg_service::{ForkGraphService, ServiceConfig};
use forkgraph_core::EngineConfig;

fn start(config: ServerConfig) -> ForkGraphServer {
    let g = gen::erdos_renyi(120, 700, 41).with_random_weights(8, 41);
    let pg = Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Chunked, 4),
    ));
    let service = ForkGraphService::start(pg, EngineConfig::default(), ServiceConfig::default());
    ForkGraphServer::start(service, config).expect("bind loopback")
}

/// Poll-read until the peer closes (EOF or reset), bounded by `patience`.
fn closed_within(stream: &mut TcpStream, patience: Duration) -> bool {
    stream.set_read_timeout(Some(Duration::from_millis(50))).expect("set poll timeout");
    let deadline = Instant::now() + patience;
    let mut scratch = [0u8; 256];
    while Instant::now() < deadline {
        match stream.read(&mut scratch) {
            Ok(0) => return true,
            Ok(_) => continue, // drain any pending response bytes
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(_) => return true, // a reset counts as closed too
        }
    }
    false
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: fg\r\nConnection: close\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read http response");
    raw
}

#[test]
fn a_mid_frame_staller_is_reaped_while_a_healthy_connection_keeps_serving() {
    let server = start(ServerConfig {
        idle_timeout: Some(Duration::from_secs(30)),
        read_deadline: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut healthy = WireClient::connect(addr).expect("connect healthy");
    match healthy.call(&Request::new(1, "sssp", 0), |_| {}).expect("warm query") {
        Response::Result { payload: WirePayload::U64s(_), .. } => {}
        other => panic!("expected a result, got {other:?}"),
    }

    // The slow loris: announce the binary dialect, start a frame, stall.
    let mut staller = TcpStream::connect(addr).expect("connect staller");
    staller.write_all(&MAGIC).expect("announce dialect");
    staller.write_all(&[7, 0]).expect("half a length prefix"); // 2 of 4 header bytes
    staller.flush().expect("flush");

    // The read deadline only arms *inside* a frame: a healthy connection
    // whose gaps between complete frames far exceed the deadline must keep
    // being served, before and while the staller times out.
    for i in 0..6u32 {
        match healthy.call(&Request::new(i + 2, "sssp", i % 120), |_| {}).expect("healthy call") {
            Response::Result { payload: WirePayload::U64s(dist), .. } => {
                assert!(!dist.is_empty());
            }
            other => panic!("healthy query {i} should succeed, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(60));
    }

    assert!(
        closed_within(&mut staller, Duration::from_secs(10)),
        "the mid-frame staller must be reaped by the read deadline"
    );
    let metrics = http_get(addr, "/metrics");
    let line = metrics
        .lines()
        .find(|l| l.starts_with("fg_server_connections_timed_out_total "))
        .expect("timeout counter exposed on /metrics");
    let reaped: u64 = line.split(' ').nth(1).unwrap().parse().unwrap();
    assert!(reaped >= 1, "the reap must be counted: {line}");

    // The healthy connection survived its neighbour's reaping.
    match healthy.call(&Request::new(100, "bfs", 3), |_| {}).expect("post-reap call") {
        Response::Result { .. } => {}
        other => panic!("post-reap query should succeed, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn an_idle_binary_connection_is_reaped_after_the_idle_budget() {
    let server = start(ServerConfig {
        idle_timeout: Some(Duration::from_millis(120)),
        read_deadline: Some(Duration::from_secs(5)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut idle = TcpStream::connect(addr).expect("connect");
    idle.write_all(&MAGIC).expect("announce dialect");
    idle.flush().expect("flush");
    assert!(
        closed_within(&mut idle, Duration::from_secs(10)),
        "an idle peer must be reaped once its budget runs out"
    );
    server.shutdown();
}

#[test]
fn disabled_timeouts_leave_quiet_connections_alone() {
    let server =
        start(ServerConfig { idle_timeout: None, read_deadline: None, ..ServerConfig::default() });
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    std::thread::sleep(Duration::from_millis(300));
    // Still alive: a query round-trips after the quiet spell.
    match client.call(&Request::new(1, "sssp", 0), |_| {}).expect("call") {
        Response::Result { .. } => {}
        other => panic!("expected a result, got {other:?}"),
    }
    server.shutdown();
}
