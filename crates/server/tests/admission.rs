//! Front-door admission bugfixes (ISSUE 8 satellites) plus mutate-over-wire
//! acceptance, over real loopback sockets:
//!
//! 1. **Connection cap**: a connection flood beyond `max_connections` is
//!    answered with accept-time retry-after frames (correlation `0`) instead
//!    of unbounded threads, and slots free up when connections close.
//! 2. **Per-connection in-flight bound**: one pipelining client's over-limit
//!    requests are shed with retry-afters carrying the observed depth while
//!    a second client on its own connection keeps getting served — and the
//!    flooding connection survives to resubmit.
//! 3. **Mutations over the wire**: a mutate frame is acknowledged with the
//!    target graph version, re-queries see the new topology, and invalid
//!    mutations get typed errors.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::GraphBuilder;
use fg_server::{
    EdgeMutation, ForkGraphServer, MutateRequest, Request, Response, ServerConfig, WireClient,
    WireErrorCode, WirePayload, CONNECTION_CORRELATION,
};
use fg_service::{ForkGraphService, ServiceConfig};
use forkgraph_core::EngineConfig;

fn path_graph(weights: u32, n: usize) -> Arc<PartitionedGraph> {
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 - 1 {
        b.add_edge(v, v + 1, weights);
    }
    Arc::new(PartitionedGraph::build_arc(
        Arc::new(b.build()),
        PartitionConfig::with_partitions(PartitionMethod::Chunked, 4),
    ))
}

fn start_server(service_config: ServiceConfig, server_config: ServerConfig) -> ForkGraphServer {
    let service =
        ForkGraphService::start(path_graph(10, 8), EngineConfig::default(), service_config);
    ForkGraphServer::start(service, server_config).expect("bind loopback")
}

fn sssp_distances(client: &mut WireClient, source: u32) -> Vec<u64> {
    let correlation = client.peek_correlation();
    match client.call(&Request::new(correlation, "sssp", source), |_| {}).expect("round trip") {
        Response::Result { payload: WirePayload::U64s(dist), .. } => dist,
        other => panic!("expected distances, got {other:?}"),
    }
}

#[test]
fn connection_flood_is_shed_with_accept_time_retry_afters_and_slots_recover() {
    let server = start_server(
        ServiceConfig { batch_window: Duration::from_micros(200), ..ServiceConfig::default() },
        ServerConfig { max_connections: 4, ..ServerConfig::default() },
    );
    let addr = server.local_addr();

    // Fill every slot, proving each connection live with a round trip.
    let mut held: Vec<WireClient> = (0..4)
        .map(|_| {
            let mut client = WireClient::connect(addr).expect("connect");
            assert_eq!(sssp_distances(&mut client, 0)[0], 0);
            client
        })
        .collect();

    // The flood: every further connection gets one connection-level
    // retry-after frame and a hangup — not a thread.
    for _ in 0..6 {
        let mut client = WireClient::connect(addr).expect("tcp accepts, server rejects");
        match client.recv().expect("the rejection frame") {
            Response::RetryAfter { correlation, queue_depth, capacity, .. } => {
                assert_eq!(correlation, CONNECTION_CORRELATION);
                assert_eq!(capacity, 4);
                assert!(queue_depth >= 4, "rejection must report the live count");
            }
            other => panic!("expected accept-time retry-after, got {other:?}"),
        }
        assert!(client.recv().is_err(), "rejected connection must be closed");
    }

    // Teardown decrements: closing two held connections frees two slots, and
    // a fresh client is served end to end again.
    held.truncate(2);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "freed slots never became acceptable");
        let mut client = WireClient::connect(addr).expect("connect");
        if let Ok(id) = client.send("sssp", 0) {
            let _ = client.flush();
            if let Ok(Response::Result { correlation, .. }) = client.recv() {
                assert_eq!(correlation, id);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    drop(held);
    server.shutdown();
}

// The recovery probe above needs to *query*, not just connect: receiving any
// frame proves acceptance, but only a result proves the slot serves.
#[test]
fn freed_connection_slots_serve_queries_again() {
    let server = start_server(
        ServiceConfig::default(),
        ServerConfig { max_connections: 1, ..ServerConfig::default() },
    );
    let addr = server.local_addr();

    let first = WireClient::connect(addr).expect("connect");
    // Occupied: the next peer is rejected at accept time.
    std::thread::sleep(Duration::from_millis(50));
    let mut rejected = WireClient::connect(addr).expect("connect");
    assert!(matches!(
        rejected.recv().expect("rejection frame"),
        Response::RetryAfter { correlation: CONNECTION_CORRELATION, .. }
    ));

    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "slot never recovered after teardown");
        let mut client = WireClient::connect(addr).expect("connect");
        if let Ok(id) = client.send("sssp", 0) {
            let _ = client.flush();
            if let Ok(Response::Result { correlation, .. }) = client.recv() {
                assert_eq!(correlation, id);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn one_pipelining_client_cannot_starve_another_connection() {
    // A long batch window keeps admitted queries in flight while client A
    // floods; caching off so every request really is engine work.
    let server = start_server(
        ServiceConfig {
            batch_window: Duration::from_millis(150),
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
        ServerConfig { max_inflight_per_conn: 4, ..ServerConfig::default() },
    );
    let addr = server.local_addr();

    let mut flooder = WireClient::connect(addr).expect("connect A");
    for source in 0..12u32 {
        flooder.send("sssp", source % 8).expect("pipeline");
    }
    flooder.flush().expect("flush");

    // Client B, on its own connection, is served despite A's flood.
    let mut other = WireClient::connect(addr).expect("connect B");
    assert_eq!(sssp_distances(&mut other, 0)[7], 70);

    // A's 12 answers: exactly 4 admitted results, 8 shed with the observed
    // in-flight depth — and the connection survived all of it.
    let mut results = 0;
    let mut retries = 0;
    for _ in 0..12 {
        match flooder.recv().expect("response") {
            Response::Result { .. } => results += 1,
            Response::RetryAfter { capacity, queue_depth, .. } => {
                assert_eq!(capacity, 4);
                assert_eq!(queue_depth, 4, "shed frames carry the observed depth");
                retries += 1;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!((results, retries), (4, 8));

    // Survival: the shed client resubmits successfully once drained.
    assert_eq!(sssp_distances(&mut flooder, 0)[1], 10);
    server.shutdown();
}

#[test]
fn mutations_travel_the_wire_and_requeries_see_the_new_graph() {
    let server = start_server(ServiceConfig::default(), ServerConfig::default());
    let addr = server.local_addr();
    let mut client = WireClient::connect(addr).expect("connect");

    assert_eq!(sssp_distances(&mut client, 0)[3], 30);

    // Insert a shortcut; the ack names the version that will carry it.
    match client.mutate(EdgeMutation::Insert { u: 0, v: 3, w: 5 }, |_| {}).expect("mutate") {
        Response::Result { payload: WirePayload::Version(version), .. } => {
            assert_eq!(version, 1)
        }
        other => panic!("expected version ack, got {other:?}"),
    }
    assert_eq!(sssp_distances(&mut client, 0)[3], 5, "re-query served the pre-mutation graph");

    // Deletion over the wire takes the full-re-run fallback server-side.
    match client.mutate(EdgeMutation::Delete { u: 0, v: 3 }, |_| {}).expect("mutate") {
        Response::Result { payload: WirePayload::Version(version), .. } => {
            assert_eq!(version, 2)
        }
        other => panic!("expected version ack, got {other:?}"),
    }
    assert_eq!(sssp_distances(&mut client, 0)[3], 30);

    // Invalid mutations get typed errors; the connection survives.
    match client.mutate(EdgeMutation::Insert { u: 2, v: 2, w: 1 }, |_| {}).expect("mutate") {
        Response::Error { code, .. } => assert_eq!(code, WireErrorCode::InvalidMutation),
        other => panic!("expected invalid-mutation error, got {other:?}"),
    }
    match client.mutate(EdgeMutation::Insert { u: 0, v: 999, w: 1 }, |_| {}).expect("mutate") {
        Response::Error { code, .. } => assert_eq!(code, WireErrorCode::InvalidMutation),
        other => panic!("expected invalid-mutation error, got {other:?}"),
    }

    // Correlation 0 stays reserved for mutate frames too.
    client
        .send_mutate_request(&MutateRequest {
            correlation: CONNECTION_CORRELATION,
            mutation: EdgeMutation::Insert { u: 0, v: 1, w: 1 },
        })
        .expect("send");
    client.flush().expect("flush");
    match client.recv().expect("response") {
        Response::Error { correlation, code, .. } => {
            assert_eq!((correlation, code), (CONNECTION_CORRELATION, WireErrorCode::Protocol));
        }
        other => panic!("expected protocol error, got {other:?}"),
    }

    let metrics = server.metrics();
    assert_eq!(metrics.mutations_applied, 2);
    server.shutdown();
}
