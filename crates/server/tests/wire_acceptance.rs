//! End-to-end acceptance of the network front door, over real loopback
//! sockets:
//!
//! 1. N concurrent connections, each **pipelining** a mix of SSSP, BFS, and
//!    a custom registered kernel, get results **byte-identical** to a direct
//!    serial oracle — the wire adds no semantics.
//! 2. Saturation produces retry-after frames and the connection survives to
//!    resubmit successfully.
//! 3. Graceful shutdown answers every admitted correlation ID before the
//!    sockets close.
//! 4. Garbage, oversized, and reserved-correlation frames produce typed
//!    error frames without desynchronising or killing the connection.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_graph::gen;
use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_graph::{AdjacencyView, CsrGraph, Dist, VertexId, INF_DIST};
use fg_server::{
    ForkGraphServer, Request, Response, ServerConfig, WireClient, WireErrorCode, WirePayload,
};
use fg_service::{ForkGraphService, InstantiatedKernel, ParamError, QueryParams, ServiceConfig};
use forkgraph_core::kernel::FppKernel;
use forkgraph_core::operation::Priority;
use forkgraph_core::{erase, EngineConfig, ForkGraphEngine};

fn graphs(seed: u64) -> (CsrGraph, Arc<PartitionedGraph>) {
    let g = gen::erdos_renyi(300, 2200, seed).with_random_weights(8, seed);
    let pg = Arc::new(PartitionedGraph::build(
        &g,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 6),
    ));
    (g, pg)
}

// --- A custom kernel registered only in this test: capped-hop distances. ---

/// Weighted shortest distance using at most `k` hops (min-lattice DP ⇒ one
/// fixpoint regardless of schedule, so results are byte-stable).
struct HopCapKernel {
    k: u32,
}

impl FppKernel for HopCapKernel {
    type Value = (Dist, u32);
    type State = Vec<Dist>;

    fn name(&self) -> &'static str {
        "hopcap-test"
    }

    fn init_state(&self, graph: &CsrGraph) -> Self::State {
        vec![INF_DIST; graph.num_vertices() * (self.k as usize + 1)]
    }

    fn source_op(&self, _source: VertexId) -> (Self::Value, Priority) {
        ((0, 0), 0)
    }

    fn process(
        &self,
        graph: &AdjacencyView<'_>,
        state: &mut Self::State,
        vertex: VertexId,
        (dist, hops): Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) -> u64 {
        let stride = self.k as usize + 1;
        let base = vertex as usize * stride;
        if dist >= state[base + hops as usize] {
            return 0;
        }
        for h in hops as usize..stride {
            if dist < state[base + h] {
                state[base + h] = dist;
            }
        }
        if hops == self.k {
            return 0;
        }
        let mut edges = 0u64;
        for (t, w) in graph.out_edges(vertex) {
            edges += 1;
            let nd = dist + w as Dist;
            if nd < state[t as usize * stride + hops as usize + 1] {
                emit(t, (nd, hops + 1), nd);
            }
        }
        edges
    }
}

fn hopcap_factory(params: &QueryParams) -> Result<InstantiatedKernel, ParamError> {
    params.ensure_known(&["k"])?;
    let k = params.u64_or("k", 3)?;
    if k == 0 || k > 64 {
        return Err(ParamError::new(format!("parameter \"k\" must be in 1..=64, got {k}")));
    }
    Ok(InstantiatedKernel::new(
        erase(HopCapKernel { k: k as u32 }),
        QueryParams::new().with("k", k),
    ))
}

/// Serial oracle for the custom kernel: k rounds of Bellman–Ford, then the
/// full DP table the kernel serves (distance per vertex per hop budget).
fn hopcap_oracle(graph: &CsrGraph, source: VertexId, k: u32) -> Vec<Dist> {
    let n = graph.num_vertices();
    let stride = k as usize + 1;
    let mut table = vec![INF_DIST; n * stride];
    table[source as usize * stride] = 0;
    for h in 1..stride {
        for v in 0..n {
            table[v * stride + h] = table[v * stride + h - 1];
        }
        for v in 0..n as u32 {
            let from = table[v as usize * stride + h - 1];
            if from == INF_DIST {
                continue;
            }
            for (t, w) in graph.out_edges(v) {
                let nd = from + w as Dist;
                if nd < table[t as usize * stride + h] {
                    table[t as usize * stride + h] = nd;
                }
            }
        }
    }
    table
}

fn start_server(service: ForkGraphService, config: ServerConfig) -> ForkGraphServer {
    ForkGraphServer::start(service, config).expect("bind loopback")
}

#[test]
fn pipelined_mixed_queries_are_byte_identical_to_the_serial_oracle() {
    let (g, pg) = graphs(331);
    let service = ForkGraphService::start(
        Arc::clone(&pg),
        EngineConfig::default().with_threads(4),
        ServiceConfig {
            batch_window: Duration::from_millis(10),
            cache_capacity: 256,
            ..ServiceConfig::default()
        },
    );
    service.handle().register_kernel("hopcap", hopcap_factory).unwrap();
    let server = start_server(service, ServerConfig::default());
    let addr = server.local_addr();

    // The serial in-process oracle.
    let direct = ForkGraphEngine::new(&pg, EngineConfig::default());
    let k = 4u64;

    const CLIENTS: usize = 5; // issue floor is N >= 4
    const QUERIES_PER_CLIENT: u32 = 12;
    let collected: Vec<Vec<(Request, Response)>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = WireClient::connect(addr).expect("connect");
                    // Pipeline everything first: a mixed burst of built-ins
                    // and the custom kernel from client-specific sources.
                    let mut sent: Vec<Request> = Vec::new();
                    for i in 0..QUERIES_PER_CLIENT {
                        let source = (c as u32 * 97 + i * 31) % 300;
                        let correlation = i + 1;
                        let request = match i % 3 {
                            0 => Request::new(correlation, "sssp", source),
                            1 => Request::new(correlation, "bfs", source),
                            _ => Request::new(correlation, "hopcap", source).param("k", k),
                        };
                        client.send_request(&request).expect("send");
                        sent.push(request);
                    }
                    client.flush().expect("flush");
                    // Collect responses in *whatever* order they arrive.
                    let mut responses: HashMap<u32, Response> = HashMap::new();
                    while responses.len() < sent.len() {
                        let response = client.recv().expect("recv");
                        let correlation = response.correlation();
                        assert!(
                            responses.insert(correlation, response).is_none(),
                            "duplicate response for correlation {correlation}"
                        );
                    }
                    sent.into_iter()
                        .map(|request| {
                            let response = responses.remove(&request.correlation).unwrap();
                            (request, response)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    let mut checked = 0usize;
    for per_client in collected {
        for (request, response) in per_client {
            let payload = match response {
                Response::Result { correlation, payload } => {
                    assert_eq!(correlation, request.correlation);
                    payload
                }
                other => panic!("expected a result for {request:?}, got {other:?}"),
            };
            match request.kernel.as_str() {
                "sssp" => {
                    let oracle = &direct.run_sssp(&[request.source]).per_query[0];
                    assert_eq!(
                        payload,
                        WirePayload::U64s(oracle.clone()),
                        "sssp {}",
                        request.source
                    );
                }
                "bfs" => {
                    let oracle = &direct.run_bfs(&[request.source]).per_query[0];
                    assert_eq!(
                        payload,
                        WirePayload::U32s(oracle.clone()),
                        "bfs {}",
                        request.source
                    );
                }
                "hopcap" => {
                    let oracle = hopcap_oracle(&g, request.source, k as u32);
                    assert_eq!(payload, WirePayload::U64s(oracle), "hopcap {}", request.source);
                }
                other => unreachable!("unexpected kernel {other}"),
            }
            checked += 1;
        }
    }
    assert_eq!(checked, CLIENTS * QUERIES_PER_CLIENT as usize);
    server.shutdown();
}

#[test]
fn saturation_sends_retry_after_and_the_connection_survives() {
    let (_, pg) = graphs(333);
    // A tiny queue and a long window: the pipelined burst must overflow
    // admission control while the first batch is still forming.
    let service = ForkGraphService::start(
        pg,
        EngineConfig::default(),
        ServiceConfig {
            batch_window: Duration::from_millis(300),
            max_batch_size: 4,
            max_queue_depth: 4,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let server = start_server(service, ServerConfig::default());
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    const BURST: u32 = 32;
    for i in 0..BURST {
        client.send("sssp", i % 300).expect("send");
    }
    client.flush().expect("flush");

    let mut results = 0u32;
    let mut retries: Vec<(u32, u32)> = Vec::new(); // (correlation, retry_after_ms)
    for _ in 0..BURST {
        match client.recv().expect("recv") {
            Response::Result { .. } => results += 1,
            Response::RetryAfter { correlation, retry_after_ms, queue_depth, capacity } => {
                assert!(retry_after_ms > 0, "retry hint must be positive");
                assert_eq!(capacity, 4, "capacity echoes the service config");
                assert!(queue_depth >= capacity, "shed at or beyond capacity");
                retries.push((correlation, retry_after_ms));
            }
            other => panic!("saturated burst should yield results/retries, got {other:?}"),
        }
    }
    assert!(results >= 1, "some queries must still be admitted");
    assert!(!retries.is_empty(), "a 32-deep burst into a 4-deep queue must shed");

    // The shed queries retry successfully on the *same* connection once the
    // burst has drained — saturation never cost us the socket.
    for (correlation, _) in &retries {
        let request = Request::new(correlation + BURST, "sssp", *correlation % 300);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match client.call(&request, |_| {}).expect("retry call") {
                Response::Result { .. } => break,
                Response::RetryAfter { retry_after_ms, .. } => {
                    assert!(Instant::now() < deadline, "saturation never cleared");
                    std::thread::sleep(Duration::from_millis(retry_after_ms as u64));
                }
                other => panic!("retry should succeed or backoff, got {other:?}"),
            }
        }
    }
    server.shutdown();
}

#[test]
fn shutdown_answers_every_admitted_correlation() {
    let (_, pg) = graphs(335);
    let service = ForkGraphService::start(
        pg,
        EngineConfig::default(),
        // A long window so the burst is still pending when shutdown starts:
        // the drain (not luck) is what answers the tickets.
        ServiceConfig {
            batch_window: Duration::from_millis(200),
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let server = start_server(service, ServerConfig::default());

    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    const PIPELINED: u32 = 10;
    for i in 0..PIPELINED {
        client.send("bfs", (i * 13) % 300).expect("send");
    }
    client.flush().expect("flush");

    // Wait until the server has *admitted* the whole burst (shutting the
    // read half may discard unread bytes, so admission must come first for
    // the answered-correlations guarantee to be testable deterministically).
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.metrics().submitted < PIPELINED as u64 {
        assert!(Instant::now() < deadline, "burst never reached the service");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Shut down concurrently while responses are still outstanding.
    let shutdown = std::thread::spawn(move || server.shutdown());

    let mut answered = std::collections::HashSet::new();
    // recv() errors once the server closes after draining.
    while let Ok(response) = client.recv() {
        assert!(answered.insert(response.correlation()));
        if let Response::Error { code, .. } = response {
            // A drain-time rejection is an acceptable answer; silence is not.
            assert_eq!(code, WireErrorCode::ShuttingDown);
        }
    }
    assert_eq!(
        answered.len(),
        PIPELINED as usize,
        "every admitted correlation must be resolved or rejected before close"
    );
    shutdown.join().unwrap();
}

#[test]
fn malformed_frames_get_typed_errors_and_never_desync_the_stream() {
    let (_, pg) = graphs(337);
    let service = ForkGraphService::start(pg, EngineConfig::default(), ServiceConfig::default());
    let server =
        start_server(service, ServerConfig { max_frame_len: 4096, ..ServerConfig::default() });
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    // 1. Pure garbage body: typed connection-level protocol error.
    client.send_raw_frame(&[0xDE, 0xAD, 0xBE, 0xEF]).expect("send garbage");
    client.flush().expect("flush");
    match client.recv().expect("recv") {
        Response::Error { correlation: 0, code: WireErrorCode::Protocol, .. } => {}
        other => panic!("garbage should yield a connection-level protocol error, got {other:?}"),
    }

    // 2. Oversized frame: discarded server-side, answered, stream intact.
    client.send_raw_frame(&vec![0u8; 8192]).expect("send oversized");
    client.flush().expect("flush");
    match client.recv().expect("recv") {
        Response::Error { correlation: 0, code: WireErrorCode::Protocol, message } => {
            assert!(message.contains("8192"), "error names the declared length: {message}");
        }
        other => panic!("oversized frame should yield a protocol error, got {other:?}"),
    }

    // 3. Reserved correlation 0: rejected without touching the service.
    let reserved = Request::new(0, "sssp", 1);
    client.send_request(&reserved).expect("send reserved");
    client.flush().expect("flush");
    match client.recv().expect("recv") {
        Response::Error { correlation: 0, code: WireErrorCode::Protocol, .. } => {}
        other => panic!("correlation 0 must be rejected, got {other:?}"),
    }

    // 4. Service-level rejections stay per-correlation and typed.
    match client.call(&Request::new(70, "no-such-kernel", 0), |_| {}).expect("call") {
        Response::Error { correlation: 70, code: WireErrorCode::UnknownKernel, .. } => {}
        other => panic!("unknown kernel should be typed, got {other:?}"),
    }
    match client.call(&Request::new(71, "sssp", 5_000_000), |_| {}).expect("call") {
        Response::Error { correlation: 71, code: WireErrorCode::InvalidSource, .. } => {}
        other => panic!("out-of-range source should be typed, got {other:?}"),
    }

    // 5. After all that abuse the connection still answers real queries.
    match client.call(&Request::new(72, "sssp", 0), |_| {}).expect("call") {
        Response::Result { correlation: 72, payload: WirePayload::U64s(dist) } => {
            assert_eq!(dist[0], 0, "source distance is zero");
        }
        other => panic!("healthy query after abuse should succeed, got {other:?}"),
    }
    server.shutdown();
}
