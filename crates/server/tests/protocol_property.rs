//! Fuzz-ish property tests of the wire codec, hand-rolled and seeded like
//! the workspace's `tests/property.rs` (no proptest in the vendored-deps
//! world; failures print the offending case seed, which reproduces exactly).
//!
//! Properties:
//! 1. Random well-formed requests and responses **round-trip** bit-exactly.
//! 2. Every strict prefix of a valid body decodes to a typed error — never a
//!    panic, never a bogus success.
//! 3. Arbitrary garbage bodies decode to typed errors without panicking.
//! 4. A stream interleaving valid frames with garbage and oversized frames
//!    never desyncs: every valid frame decodes, every bad one errs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fg_server::error::FrameReadError;
use fg_server::framing::{read_frame, write_frame};
use fg_server::protocol::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
    WireErrorCode, WirePayload,
};
use fg_service::ParamValue;

const CASES: u64 = 64;

fn arb_string(rng: &mut SmallRng, max_len: usize) -> String {
    let len = rng.gen_range(0usize..max_len.max(1));
    (0..len)
        .map(|_| {
            // Mix ASCII with multi-byte code points to exercise UTF-8 paths.
            match rng.gen_range(0u32..10) {
                0 => 'λ',
                1 => '🜁',
                _ => char::from(rng.gen_range(0x20u32..0x7F) as u8),
            }
        })
        .collect()
}

fn arb_param(rng: &mut SmallRng) -> ParamValue {
    match rng.gen_range(0u32..5) {
        0 => ParamValue::Bool(rng.gen_range(0u32..2) == 1),
        1 => ParamValue::U64(rng.gen_range(0u64..u64::MAX)),
        2 => ParamValue::I64(rng.gen_range(0u64..u64::MAX) as i64),
        // Arbitrary bit patterns (incl. NaNs): the codec is bit-exact.
        3 => ParamValue::F64(f64::from_bits(rng.gen_range(0u64..u64::MAX))),
        _ => ParamValue::Str(arb_string(rng, 24)),
    }
}

fn arb_request(rng: &mut SmallRng) -> Request {
    let mut request = Request::new(
        rng.gen_range(1u32..u32::MAX),
        arb_string(rng, 16),
        rng.gen_range(0u32..1_000_000),
    );
    for _ in 0..rng.gen_range(0usize..6) {
        request = request.param(arb_string(rng, 12), arb_param(rng));
    }
    request
}

fn arb_u64s(rng: &mut SmallRng, max: usize) -> Vec<u64> {
    (0..rng.gen_range(0usize..max)).map(|_| rng.gen_range(0u64..u64::MAX)).collect()
}

fn arb_response(rng: &mut SmallRng) -> Response {
    let correlation = rng.gen_range(0u32..u32::MAX);
    match rng.gen_range(0u32..7) {
        0 => Response::Result {
            correlation,
            payload: WirePayload::U32s(
                (0..rng.gen_range(0usize..40)).map(|_| rng.gen_range(0u32..u32::MAX)).collect(),
            ),
        },
        1 => Response::Result { correlation, payload: WirePayload::U64s(arb_u64s(rng, 40)) },
        2 => Response::Result {
            correlation,
            payload: WirePayload::F64s(arb_u64s(rng, 40).into_iter().map(f64::from_bits).collect()),
        },
        3 => Response::Result {
            correlation,
            payload: WirePayload::Ppr {
                estimate: arb_u64s(rng, 30).into_iter().map(f64::from_bits).collect(),
                residual: arb_u64s(rng, 30).into_iter().map(f64::from_bits).collect(),
                pushes: rng.gen_range(0u64..u64::MAX),
            },
        },
        4 => {
            Response::Result { correlation, payload: WirePayload::Rw { visits: arb_u64s(rng, 40) } }
        }
        5 => Response::Error {
            correlation,
            code: [
                WireErrorCode::ShuttingDown,
                WireErrorCode::InvalidSource,
                WireErrorCode::MissingSource,
                WireErrorCode::UnknownKernel,
                WireErrorCode::InvalidParams,
                WireErrorCode::EngineFailure,
                WireErrorCode::UnsupportedResult,
                WireErrorCode::Protocol,
            ][rng.gen_range(0usize..8)],
            message: arb_string(rng, 80),
        },
        _ => Response::RetryAfter {
            correlation,
            retry_after_ms: rng.gen_range(0u32..u32::MAX),
            queue_depth: rng.gen_range(0u32..u32::MAX),
            capacity: rng.gen_range(0u32..u32::MAX),
        },
    }
}

/// Bit-exact equality (PartialEq is wrong for NaN-carrying floats).
fn bits_of_response(response: &Response) -> Vec<u8> {
    encode_response(response)
}

#[test]
fn random_requests_round_trip_bit_exactly() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF00D + case);
        let request = arb_request(&mut rng);
        let body = encode_request(&request);
        let back = decode_request(&body).unwrap_or_else(|e| panic!("case {case}: {e}"));
        // Re-encoding the decoded value must reproduce the bytes — catches
        // both decode and encode drift, and sidesteps NaN PartialEq.
        assert_eq!(encode_request(&back), body, "case {case}");
    }
}

#[test]
fn random_responses_round_trip_bit_exactly() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xBEEF + case);
        let response = arb_response(&mut rng);
        let body = bits_of_response(&response);
        let back = decode_response(&body).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(bits_of_response(&back), body, "case {case}");
    }
}

#[test]
fn every_strict_prefix_of_a_valid_body_is_a_typed_error() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9E9E + case);
        let request_body = encode_request(&arb_request(&mut rng));
        for cut in 0..request_body.len() {
            // Never panics; never succeeds (the codec demands exact
            // consumption, so a shorter body must miss some field).
            assert!(
                decode_request(&request_body[..cut]).is_err(),
                "case {case}: request prefix of {cut} bytes decoded"
            );
        }
        let response_body = bits_of_response(&arb_response(&mut rng));
        for cut in 0..response_body.len() {
            assert!(
                decode_response(&response_body[..cut]).is_err(),
                "case {case}: response prefix of {cut} bytes decoded"
            );
        }
    }
}

#[test]
fn garbage_bodies_never_panic_the_decoders() {
    for case in 0..CASES * 4 {
        let mut rng = SmallRng::seed_from_u64(0x6A6B + case);
        let len = rng.gen_range(0usize..512);
        let body: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        // Either outcome is fine; what matters is "no panic" and, for the
        // rare accidental success, exact consumption already held.
        let _ = decode_request(&body);
        let _ = decode_response(&body);
    }
}

#[test]
fn interleaved_garbage_and_oversized_frames_never_desync_the_stream() {
    const CAP: usize = 1 << 16;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5EED + case);
        // Build a wire image: a shuffle of valid requests, garbage bodies,
        // and oversized bodies, remembering what we expect back.
        #[derive(Debug, PartialEq, Eq)]
        enum Expect {
            Valid,
            Garbage,
            Oversized,
        }
        let mut wire = Vec::new();
        let mut script = Vec::new();
        for _ in 0..rng.gen_range(1usize..12) {
            match rng.gen_range(0u32..3) {
                0 => {
                    write_frame(&mut wire, &encode_request(&arb_request(&mut rng))).unwrap();
                    script.push(Expect::Valid);
                }
                1 => {
                    let len = rng.gen_range(0usize..64);
                    let garbage: Vec<u8> =
                        (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
                    write_frame(&mut wire, &garbage).unwrap();
                    script.push(Expect::Garbage);
                }
                _ => {
                    write_frame(&mut wire, &vec![0xAAu8; CAP + 1]).unwrap();
                    script.push(Expect::Oversized);
                }
            }
        }
        let mut reader = wire.as_slice();
        for (i, expect) in script.iter().enumerate() {
            match read_frame(&mut reader, CAP) {
                Ok(body) => {
                    // The framing layer is agnostic to body content: both
                    // valid and garbage bodies arrive intact; the *codec*
                    // sorts them out.
                    match expect {
                        Expect::Valid => {
                            decode_request(&body).unwrap_or_else(|e| {
                                panic!("case {case} frame {i}: valid frame failed: {e}")
                            });
                        }
                        Expect::Garbage => {
                            // Usually an error; an accidental parse of random
                            // bytes is possible but must not panic.
                            let _ = decode_request(&body);
                        }
                        Expect::Oversized => {
                            panic!("case {case} frame {i}: oversized frame was delivered")
                        }
                    }
                }
                Err(FrameReadError::Oversized { .. }) => {
                    assert_eq!(
                        *expect,
                        Expect::Oversized,
                        "case {case} frame {i}: unexpected oversize"
                    );
                }
                Err(other) => panic!("case {case} frame {i}: stream broke: {other}"),
            }
        }
        // And the stream ends exactly at a frame boundary.
        assert!(matches!(read_frame(&mut reader, CAP), Err(FrameReadError::Closed)));
    }
}
