//! The HTTP/1.1 GET surface on the shared listener: `/healthz`, `/metrics`
//! (Prometheus text exposition with both `fg_service_*` and `fg_server_*`
//! families, never NaN), and `/trace` (Chrome trace JSON that
//! `fg_trace::chrome::parse` accepts). Also pins the dialect sniffing: HTTP
//! and binary clients coexist on one port.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use fg_graph::gen;
use fg_graph::partition::{PartitionConfig, PartitionMethod};
use fg_graph::partitioned::PartitionedGraph;
use fg_server::{ForkGraphServer, Request, Response, ServerConfig, WireClient, WirePayload};
use fg_service::{ForkGraphService, ServiceConfig};
use fg_trace::TraceSink;
use forkgraph_core::EngineConfig;

fn small_graph() -> Arc<PartitionedGraph> {
    let graph = gen::rmat(8, 8, 11).with_random_weights(9, 11);
    Arc::new(PartitionedGraph::build(
        &graph,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 4),
    ))
}

fn traced_server() -> ForkGraphServer {
    let service = ForkGraphService::start_traced(
        small_graph(),
        EngineConfig::default(),
        ServiceConfig { batch_window: Duration::from_millis(2), ..ServiceConfig::default() },
        TraceSink::new(),
    );
    ForkGraphServer::start(service, ServerConfig::default()).expect("bind loopback")
}

/// A deliberately bare HTTP/1.0-style GET: returns (status_code, body).
fn http_request(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    http_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: fg\r\nConnection: close\r\n\r\n"))
}

#[test]
fn healthz_reports_ok_then_draining() {
    let server = traced_server();
    let addr = server.local_addr();
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body.trim(), "ok");

    server.begin_drain();
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "a draining server still answers health probes");
    assert_eq!(body.trim(), "draining");
    server.shutdown();
}

#[test]
fn metrics_expose_service_and_server_families_without_nan() {
    let server = traced_server();
    let addr = server.local_addr();

    // Push some traffic through both dialects so the counters move.
    let mut client = WireClient::connect(addr).expect("connect wire");
    for i in 0..4 {
        match client.call(&Request::new(i + 1, "sssp", i), |_| {}).expect("call") {
            Response::Result { payload: WirePayload::U64s(_), .. } => {}
            other => panic!("expected sssp result, got {other:?}"),
        }
    }

    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    for family in [
        "fg_service_submitted_total",
        "fg_service_admitted_total",
        "fg_server_connections_accepted_total",
        "fg_server_frames_in_total",
        "fg_server_frames_out_total",
        "fg_server_http_requests_total",
    ] {
        assert!(body.contains(family), "missing family {family} in:\n{body}");
    }
    assert!(!body.contains("NaN"), "exposition must never contain NaN:\n{body}");
    // The wire counters reflect the traffic we just generated.
    let frames_in = body
        .lines()
        .find(|line| line.starts_with("fg_server_frames_in_total"))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|value| value.parse::<u64>().ok())
        .expect("frames_in value");
    assert!(frames_in >= 4, "four requests crossed the wire, got {frames_in}");
    server.shutdown();
}

#[test]
fn trace_endpoint_serves_parseable_chrome_json() {
    let server = traced_server();
    let addr = server.local_addr();
    let mut client = WireClient::connect(addr).expect("connect wire");
    client.call(&Request::new(1, "bfs", 0), |_| {}).expect("warm the trace");

    let (status, body) = http_get(addr, "/trace");
    assert_eq!(status, 200);
    let events = fg_trace::chrome::parse(&body).expect("valid Chrome trace JSON");
    assert!(!events.is_empty(), "a served query leaves trace events");
    server.shutdown();
}

#[test]
fn trace_endpoint_is_404_without_tracing() {
    let service =
        ForkGraphService::start(small_graph(), EngineConfig::default(), ServiceConfig::default());
    let server = ForkGraphServer::start(service, ServerConfig::default()).expect("bind");
    let (status, body) = http_get(server.local_addr(), "/trace");
    assert_eq!(status, 404);
    assert!(body.contains("start_traced"), "the 404 says how to enable tracing");
    server.shutdown();
}

#[test]
fn unknown_paths_and_methods_get_typed_statuses() {
    let server = traced_server();
    let addr = server.local_addr();
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, _) =
        http_request(addr, "POST /metrics HTTP/1.1\r\nHost: fg\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 405);
    // Query strings are tolerated on known paths.
    let (status, _) = http_get(addr, "/metrics?cachebust=1");
    assert_eq!(status, 200);
    server.shutdown();
}
