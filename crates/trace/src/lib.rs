//! # fg-trace
//!
//! Low-overhead structured tracing for the ForkGraph stack.
//!
//! The engine's aggregate counters ([`fg_metrics`]) say *how much* work a run
//! did; this crate records *where the time went* — the schedule itself, as a
//! stream of compact fixed-size events (partition visits, mailbox drains,
//! steals, parks, batch formation, ticket resolution), cheap enough to leave
//! compiled into release builds.
//!
//! The design is hand-rolled for the vendored-deps world (no `tracing`, no
//! `tokio`):
//!
//! * **One branch when disabled.** Instrumented code holds an
//!   `Option<Arc<TraceSink>>`; the no-sink path costs a single
//!   predictable-branch load. A sink that is attached but
//!   [disabled](TraceSink::set_enabled) costs one additional relaxed atomic
//!   load per site. The `traced_off_vs_untraced` bench-smoke metric gates
//!   this claim.
//! * **Per-thread lock-free ring buffers.** Each emitting thread owns a
//!   lane: a single-producer ring of 3-word event records written with
//!   relaxed atomic stores and published with one release store of the
//!   cursor. No emit ever takes a lock (lane *registration*, once per
//!   thread per sink, does). Readers see each lane as a [`ThreadEvents`].
//! * **Compact events.** A [`TraceEvent`] is 24 bytes: one monotonic
//!   timestamp (a single `Instant::elapsed` read per event), a `u16`
//!   [`EventKind`], and three `u32` payload ids (partition, worker, ticket,
//!   batch, … — see each kind's docs).
//!
//! On top of the raw stream:
//!
//! * [`RunProfile`] — a per-run summary (per-phase wall time, visit/steal
//!   histograms) attached to engine run results when
//!   `EngineConfig::profile` is set; computed from counters, not from the
//!   event stream, so it works without a sink.
//! * [`chrome::export`] — Chrome trace-event JSON (`chrome://tracing` /
//!   Perfetto) with named per-thread tracks and flow arrows connecting each
//!   service ticket's submit → batch → run → resolve spans across threads.
//! * [`fn@expose`] — Prometheus-style text exposition of service/pool/trace
//!   snapshots, so an HTTP front door can serve `/metrics` by pasting one
//!   string.

pub mod chrome;
pub mod event;
pub mod expose;
pub mod profile;
pub mod sink;

pub use event::{EventKind, TraceEvent};
pub use expose::expose;
pub use profile::{AtomicHistogram, Histogram, PhaseTimes, RunProfile};
pub use sink::{ThreadEvents, TraceSink, TraceStats};
