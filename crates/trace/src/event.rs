//! Compact fixed-size trace event records.
//!
//! An event is 24 bytes — a nanosecond timestamp relative to the sink's
//! epoch, a `u16` kind, and three `u32` payload slots — encoded into three
//! `u64` ring-buffer words:
//!
//! ```text
//! word 0: nanos
//! word 1: (kind as u64) << 32 | a
//! word 2: (c    as u64) << 32 | b
//! ```
//!
//! Payload slots are ids, never pointers: partition ids, worker indices,
//! ticket ids minted by [`TraceSink::next_id`](crate::TraceSink::next_id),
//! operation counts. Meaning is per-kind (documented on each variant);
//! unused slots are zero.

/// What happened. The numeric values are part of the on-ring encoding;
/// [`EventKind::from_u16`] rejects unknown values so a torn ring word decodes
/// to "skip" rather than garbage.
#[repr(u16)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An engine run started. `a` = number of queries, `b` = worker count
    /// (1 for serial), `c` = number of kernel groups (1 for single-kernel).
    RunBegin = 1,
    /// The matching end of [`EventKind::RunBegin`] on the same thread.
    RunEnd = 2,
    /// A partition visit started draining consolidated operations.
    /// `a` = partition id, `b` = operations consolidated, `c` = query groups
    /// with operations in this visit.
    PartitionVisitBegin = 3,
    /// The matching end of [`EventKind::PartitionVisitBegin`].
    /// `a` = partition id.
    PartitionVisitEnd = 4,
    /// One query's consolidated group was processed inside a multi-kernel
    /// visit. `a` = query index, `b` = kernel group index, `c` = partition
    /// id.
    QueryGroupVisit = 5,
    /// A query yielded the partition under the engine's yield policy.
    /// `a` = query index, `b` = partition id.
    Yield = 6,
    /// A parallel worker claimed a runnable partition. `a` = partition id,
    /// `b` = worker index.
    Claim = 7,
    /// The claim was stolen from another worker's runnable set.
    /// `a` = partition id, `b` = thief worker index, `c` = victim worker
    /// index.
    Steal = 8,
    /// A claimed partition's mailbox was drained. `a` = partition id,
    /// `b` = operations drained (0 = spurious wakeup, visit skipped),
    /// `c` = worker index.
    MailboxDrain = 9,
    /// A worker parked. `a` = worker index, `b` = 1 for an in-run idle wait
    /// (no runnable partition), 0 for a pool worker parking between runs.
    Park = 10,
    /// A parked worker woke. `a` = worker index, `b` as for
    /// [`EventKind::Park`].
    Unpark = 11,
    /// The persistent pool dispatched a run to its crew. `a` = dispatch
    /// generation (low 32 bits), `b` = active workers.
    PoolDispatch = 12,
    /// Per-run executor storage was fetched from the pool's recycle arena.
    /// `a` = mailboxes reused, `b` = mailboxes rebuilt, `c` = worker count
    /// of the run.
    StorageRecycle = 13,
    /// A query entered the service. `a` = ticket id, `b` = kernel id,
    /// `c` = source vertex.
    Submit = 14,
    /// The submit was answered from the result cache (no ticket enters the
    /// queue). `a` = ticket id, `b` = kernel id.
    CacheHit = 15,
    /// The submit was admitted to the pending queue. `a` = ticket id,
    /// `b` = queue depth after admission.
    Enqueue = 16,
    /// The batcher formed a micro-batch. `a` = batch id, `b` = total
    /// queries, `c` = kernel cohorts in the batch.
    BatchBegin = 17,
    /// The batch's engine pass finished and demux begins. `a` = batch id.
    BatchEnd = 18,
    /// A pending ticket was drained into a batch. `a` = ticket id,
    /// `b` = batch id.
    JoinBatch = 19,
    /// A ticket was fulfilled (result, engine failure, or shutdown flush).
    /// `a` = ticket id, `b` = batch id (0 for a shutdown flush).
    Resolve = 20,
    /// A reader pinned an epoch snapshot for the duration of one engine run.
    /// `a` = epoch (low 32 bits), `b` = pin count on that epoch after the
    /// pin.
    EpochPin = 21,
    /// The matching unpin when the reader's snapshot guard dropped. `a` = epoch
    /// (low 32 bits), `b` = pin count remaining, `c` = 1 if the drop
    /// reclaimed a retired snapshot's storage.
    EpochUnpin = 22,
    /// A new epoch was published by the writer. `a` = new epoch (low 32
    /// bits), `b` = partitions re-materialized, `c` = partitions shared with
    /// the previous epoch.
    EpochAdvance = 23,
    /// The writer folded a pending mutation log prefix into dirty-partition
    /// deltas (off the lock, concurrent with pinned readers). `a` = mutations
    /// folded, `b` = dirty partitions, `c` = base epoch (low 32 bits).
    DeltaFold = 24,
    /// A partition visit streamed a **compressed** (delta/varint) adjacency
    /// payload instead of raw CSR slices. `a` = query id, `b` = partition id.
    PartitionDecode = 25,
}

impl EventKind {
    /// Decode a raw ring word kind; `None` for values this build does not
    /// know (future kinds, or a torn record read mid-overwrite).
    pub fn from_u16(raw: u16) -> Option<EventKind> {
        Some(match raw {
            1 => EventKind::RunBegin,
            2 => EventKind::RunEnd,
            3 => EventKind::PartitionVisitBegin,
            4 => EventKind::PartitionVisitEnd,
            5 => EventKind::QueryGroupVisit,
            6 => EventKind::Yield,
            7 => EventKind::Claim,
            8 => EventKind::Steal,
            9 => EventKind::MailboxDrain,
            10 => EventKind::Park,
            11 => EventKind::Unpark,
            12 => EventKind::PoolDispatch,
            13 => EventKind::StorageRecycle,
            14 => EventKind::Submit,
            15 => EventKind::CacheHit,
            16 => EventKind::Enqueue,
            17 => EventKind::BatchBegin,
            18 => EventKind::BatchEnd,
            19 => EventKind::JoinBatch,
            20 => EventKind::Resolve,
            21 => EventKind::EpochPin,
            22 => EventKind::EpochUnpin,
            23 => EventKind::EpochAdvance,
            24 => EventKind::DeltaFold,
            25 => EventKind::PartitionDecode,
            _ => return None,
        })
    }

    /// Short lowercase name used as the Chrome-trace slice/instant name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RunBegin | EventKind::RunEnd => "run",
            EventKind::PartitionVisitBegin | EventKind::PartitionVisitEnd => "partition_visit",
            EventKind::QueryGroupVisit => "query_group_visit",
            EventKind::Yield => "yield",
            EventKind::Claim => "claim",
            EventKind::Steal => "steal",
            EventKind::MailboxDrain => "mailbox_drain",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::PoolDispatch => "pool_dispatch",
            EventKind::StorageRecycle => "storage_recycle",
            EventKind::Submit => "submit",
            EventKind::CacheHit => "cache_hit",
            EventKind::Enqueue => "enqueue",
            EventKind::BatchBegin | EventKind::BatchEnd => "batch",
            EventKind::JoinBatch => "join_batch",
            EventKind::Resolve => "resolve",
            EventKind::EpochPin => "epoch_pin",
            EventKind::EpochUnpin => "epoch_unpin",
            EventKind::EpochAdvance => "epoch_advance",
            EventKind::DeltaFold => "delta_fold",
            EventKind::PartitionDecode => "partition_decode",
        }
    }
}

/// One decoded trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the owning [`TraceSink`](crate::TraceSink)'s epoch.
    pub nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload slot (meaning per [`EventKind`]).
    pub a: u32,
    /// Second payload slot.
    pub b: u32,
    /// Third payload slot.
    pub c: u32,
}

impl TraceEvent {
    /// Encode into the three ring-buffer words.
    pub(crate) fn encode(&self) -> [u64; 3] {
        [
            self.nanos,
            ((self.kind as u16 as u64) << 32) | self.a as u64,
            ((self.c as u64) << 32) | self.b as u64,
        ]
    }

    /// Decode three ring-buffer words; `None` when the kind word is unknown
    /// (possible on a record torn by a concurrent overwrite).
    pub(crate) fn decode(words: [u64; 3]) -> Option<TraceEvent> {
        let kind = EventKind::from_u16((words[1] >> 32) as u16)?;
        Some(TraceEvent {
            nanos: words[0],
            kind,
            a: words[1] as u32,
            b: words[2] as u32,
            c: (words[2] >> 32) as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        let e = TraceEvent {
            nanos: 0xDEAD_BEEF_CAFE,
            kind: EventKind::Steal,
            a: u32::MAX,
            b: 7,
            c: 0x8000_0001,
        };
        assert_eq!(TraceEvent::decode(e.encode()), Some(e));
    }

    #[test]
    fn every_kind_round_trips_through_u16() {
        for raw in 0u16..64 {
            if let Some(kind) = EventKind::from_u16(raw) {
                assert_eq!(kind as u16, raw);
                assert!(!kind.name().is_empty());
            }
        }
        // The full kind set decodes.
        for kind in [
            EventKind::RunBegin,
            EventKind::RunEnd,
            EventKind::PartitionVisitBegin,
            EventKind::PartitionVisitEnd,
            EventKind::QueryGroupVisit,
            EventKind::Yield,
            EventKind::Claim,
            EventKind::Steal,
            EventKind::MailboxDrain,
            EventKind::Park,
            EventKind::Unpark,
            EventKind::PoolDispatch,
            EventKind::StorageRecycle,
            EventKind::Submit,
            EventKind::CacheHit,
            EventKind::Enqueue,
            EventKind::BatchBegin,
            EventKind::BatchEnd,
            EventKind::JoinBatch,
            EventKind::Resolve,
            EventKind::EpochPin,
            EventKind::EpochUnpin,
            EventKind::EpochAdvance,
            EventKind::DeltaFold,
            EventKind::PartitionDecode,
        ] {
            assert_eq!(EventKind::from_u16(kind as u16), Some(kind));
        }
    }

    #[test]
    fn unknown_kinds_decode_to_none() {
        assert_eq!(EventKind::from_u16(0), None);
        assert_eq!(EventKind::from_u16(26), None);
        assert_eq!(EventKind::from_u16(u16::MAX), None);
        assert_eq!(TraceEvent::decode([0, (26u64) << 32, 0]), None);
    }
}
