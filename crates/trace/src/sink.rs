//! The trace sink: per-thread lock-free event ring buffers behind one
//! shared handle.
//!
//! ## Hot-path cost model
//!
//! Instrumented code holds an `Option<Arc<TraceSink>>` — the *untraced*
//! path is one `None` check. With a sink attached but
//! [disabled](TraceSink::set_enabled), each site additionally pays one
//! relaxed atomic load and a predictable branch. Only when *enabled* does an
//! emit read the monotonic clock (once), look up the calling thread's lane
//! (a thread-local cache, lock-free after first use), and store three
//! relaxed `u64` words plus one release cursor store.
//!
//! ## Ring semantics
//!
//! Each lane is a single-producer overwrite-oldest ring: when a thread emits
//! more than the lane capacity, the oldest records are overwritten and
//! counted as [dropped](ThreadEvents::dropped) — tracing never blocks and
//! never allocates after lane registration. Readers
//! ([`TraceSink::events`]) may run concurrently with writers; a record torn
//! by a concurrent overwrite decodes to an unknown kind and is skipped
//! (every word is an atomic, so concurrent access is well-defined — at
//! worst a stale/garbled *diagnostic*, never undefined behaviour). Reading
//! after the traced work quiesces (the normal usage) sees a fully
//! consistent stream.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

use crate::event::{EventKind, TraceEvent};

/// Words per event record in the ring.
const WORDS_PER_EVENT: usize = 3;

/// Default per-thread lane capacity, in events (~1.5 MiB per thread).
pub const DEFAULT_LANE_CAPACITY: usize = 64 * 1024;

/// Global sink id counter — thread-local lane caches key on it, so ids must
/// never repeat within a process.
static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(sink id, lane)` pairs this thread has registered. Usually length
    /// 0 or 1; a linear scan beats a hash map at that size. Bounded (see
    /// [`CACHE_LIMIT`]) so tests that create many sinks on one thread do
    /// not pin every ring alive; an evicted entry is re-found in the
    /// sink's lane list by thread id, not re-created.
    static LANE_CACHE: RefCell<Vec<(u64, Arc<Lane>)>> = const { RefCell::new(Vec::new()) };
}

/// Max cached lanes per thread before the oldest cache entry is evicted.
const CACHE_LIMIT: usize = 4;

/// One thread's event ring.
struct Lane {
    /// The registering thread — lane lookup key inside the sink, so a
    /// thread whose cache entry was evicted gets its *existing* lane back.
    thread: ThreadId,
    /// Human-readable track label (the thread name when it has one).
    label: String,
    /// `capacity * 3` atomic words; see [`TraceEvent::encode`].
    words: Box<[AtomicU64]>,
    /// `capacity - 1` for cheap masking (capacity is a power of two).
    mask: usize,
    /// Events ever written (monotonic). Slot of event `n` is
    /// `(n & mask) * 3`; the store is `Release` so a reader that `Acquire`s
    /// the cursor sees every word of the records it covers.
    cursor: AtomicU64,
}

impl Lane {
    fn new(thread: ThreadId, label: String, capacity: usize) -> Lane {
        let words = (0..capacity * WORDS_PER_EVENT).map(|_| AtomicU64::new(0)).collect();
        Lane { thread, label, words, mask: capacity - 1, cursor: AtomicU64::new(0) }
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Single-producer append (only the owning thread calls this).
    fn write(&self, words: [u64; WORDS_PER_EVENT]) {
        let seq = self.cursor.load(Ordering::Relaxed);
        let base = (seq as usize & self.mask) * WORDS_PER_EVENT;
        for (i, word) in words.iter().enumerate() {
            self.words[base + i].store(*word, Ordering::Relaxed);
        }
        self.cursor.store(seq + 1, Ordering::Release);
    }

    /// Decode the retained window, oldest first.
    fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let seq = self.cursor.load(Ordering::Acquire);
        let capacity = self.capacity() as u64;
        let dropped = seq.saturating_sub(capacity);
        let mut events = Vec::with_capacity((seq - dropped) as usize);
        for n in dropped..seq {
            let base = (n as usize & self.mask) * WORDS_PER_EVENT;
            let words = [
                self.words[base].load(Ordering::Relaxed),
                self.words[base + 1].load(Ordering::Relaxed),
                self.words[base + 2].load(Ordering::Relaxed),
            ];
            if let Some(event) = TraceEvent::decode(words) {
                events.push(event);
            }
        }
        (events, dropped)
    }
}

/// One thread's decoded event stream, as returned by [`TraceSink::events`].
#[derive(Clone, Debug)]
pub struct ThreadEvents {
    /// Track label: the thread's name (`fg-pool-0`, `fg-service-batcher`,
    /// …) or `thread-<id>` for unnamed threads.
    pub thread: String,
    /// Retained events, oldest first, timestamps in nanoseconds since the
    /// sink epoch.
    pub events: Vec<TraceEvent>,
    /// Events overwritten by ring wrap-around before this snapshot.
    pub dropped: u64,
}

/// Aggregate sink statistics, for the exposition endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Threads that have registered a lane.
    pub threads: u64,
    /// Events currently retained across all lanes.
    pub retained: u64,
    /// Events lost to ring wrap-around across all lanes.
    pub dropped: u64,
    /// Per-lane ring capacity in events.
    pub lane_capacity: u64,
}

/// Shared handle to a set of per-thread event rings.
///
/// Create one with [`TraceSink::new`], attach it to an engine
/// (`ForkGraphEngine::with_trace_sink`) or service
/// (`ForkGraphService::start_traced`), and read the stream back with
/// [`events`](Self::events) or [`crate::chrome::export`]. The sink starts
/// **enabled**; [`set_enabled`](Self::set_enabled) toggles recording at
/// runtime without detaching (the attached-but-disabled cost is one relaxed
/// load per site).
pub struct TraceSink {
    /// Process-unique id; thread-local lane caches key on it.
    id: u64,
    /// Timestamp origin for every event in this sink.
    epoch: Instant,
    enabled: AtomicBool,
    /// Per-lane ring capacity in events (power of two).
    lane_capacity: usize,
    lanes: Mutex<Vec<Arc<Lane>>>,
    /// Correlation-id mint for tickets/batches; 0 is reserved for "no id".
    next_id: AtomicU32,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .field("threads", &stats.threads)
            .field("retained", &stats.retained)
            .field("dropped", &stats.dropped)
            .finish()
    }
}

impl TraceSink {
    /// A new, enabled sink with the default per-thread capacity
    /// ([`DEFAULT_LANE_CAPACITY`] events).
    pub fn new() -> Arc<TraceSink> {
        TraceSink::with_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// A new, enabled sink retaining up to `lane_capacity` events per
    /// thread (rounded up to a power of two, minimum 2).
    pub fn with_capacity(lane_capacity: usize) -> Arc<TraceSink> {
        Arc::new(TraceSink {
            id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            enabled: AtomicBool::new(true),
            lane_capacity: lane_capacity.max(2).next_power_of_two(),
            lanes: Mutex::new(Vec::new()),
            next_id: AtomicU32::new(1),
        })
    }

    /// Toggle recording. Disabling does not discard recorded events.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether [`emit`](Self::emit) currently records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Mint a process-wide correlation id (ticket ids, batch ids). Starts
    /// at 1; 0 means "untraced".
    pub fn next_id(&self) -> u32 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record one event on the calling thread's lane. A no-op (one relaxed
    /// load, one predictable branch) while disabled.
    #[inline]
    pub fn emit(&self, kind: EventKind, a: u32, b: u32, c: u32) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.record(kind, a, b, c);
    }

    /// The enabled emit path: one clock read, one lane lookup, one ring
    /// write. Out of line so the disabled fast path stays tiny at every
    /// instrumentation site.
    fn record(&self, kind: EventKind, a: u32, b: u32, c: u32) {
        let nanos = self.epoch.elapsed().as_nanos() as u64;
        let words = TraceEvent { nanos, kind, a, b, c }.encode();
        LANE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, lane)) = cache.iter().find(|(id, _)| *id == self.id) {
                lane.write(words);
                return;
            }
            let lane = self.lane_for_current_thread();
            lane.write(words);
            if cache.len() >= CACHE_LIMIT {
                cache.remove(0);
            }
            cache.push((self.id, lane));
        });
    }

    /// Find or register the calling thread's lane (takes the registration
    /// lock — once per thread per sink, amortised away by the cache).
    fn lane_for_current_thread(&self) -> Arc<Lane> {
        let current = std::thread::current();
        let mut lanes = self.lanes.lock().unwrap();
        if let Some(lane) = lanes.iter().find(|l| l.thread == current.id()) {
            return Arc::clone(lane);
        }
        let label = match current.name() {
            Some(name) => name.to_string(),
            None => format!("thread-{:?}", current.id()),
        };
        let lane = Arc::new(Lane::new(current.id(), label, self.lane_capacity));
        lanes.push(Arc::clone(&lane));
        lane
    }

    /// Snapshot every thread's retained events (oldest first per thread).
    /// Lanes appear in registration order.
    pub fn events(&self) -> Vec<ThreadEvents> {
        let lanes = self.lanes.lock().unwrap();
        lanes
            .iter()
            .map(|lane| {
                let (events, dropped) = lane.snapshot();
                ThreadEvents { thread: lane.label.clone(), events, dropped }
            })
            .collect()
    }

    /// All retained events across threads, merged and sorted by timestamp.
    /// The per-thread stream index rides along so callers can still tell
    /// lanes apart.
    pub fn merged_events(&self) -> Vec<(usize, TraceEvent)> {
        let mut all: Vec<(usize, TraceEvent)> = self
            .events()
            .iter()
            .enumerate()
            .flat_map(|(lane, t)| t.events.iter().map(move |&e| (lane, e)))
            .collect();
        all.sort_by_key(|(_, e)| e.nanos);
        all
    }

    /// Aggregate statistics for the exposition endpoint.
    pub fn stats(&self) -> TraceStats {
        let lanes = self.lanes.lock().unwrap();
        let mut stats = TraceStats {
            threads: lanes.len() as u64,
            lane_capacity: self.lane_capacity as u64,
            ..TraceStats::default()
        };
        for lane in lanes.iter() {
            let seq = lane.cursor.load(Ordering::Acquire);
            let dropped = seq.saturating_sub(lane.capacity() as u64);
            stats.retained += seq - dropped;
            stats.dropped += dropped;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_are_recorded_in_order_with_timestamps() {
        let sink = TraceSink::new();
        sink.emit(EventKind::RunBegin, 4, 1, 1);
        sink.emit(EventKind::PartitionVisitBegin, 9, 100, 1);
        sink.emit(EventKind::PartitionVisitEnd, 9, 0, 0);
        sink.emit(EventKind::RunEnd, 0, 0, 0);
        let streams = sink.events();
        assert_eq!(streams.len(), 1);
        let events = &streams[0].events;
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::RunBegin);
        assert_eq!(events[1].a, 9);
        assert_eq!(events[1].b, 100);
        assert!(events.windows(2).all(|w| w[0].nanos <= w[1].nanos), "monotonic timestamps");
        assert_eq!(streams[0].dropped, 0);
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::new();
        sink.set_enabled(false);
        assert!(!sink.is_enabled());
        sink.emit(EventKind::Claim, 1, 2, 3);
        assert!(sink.events().is_empty(), "no lane is even registered");
        sink.set_enabled(true);
        sink.emit(EventKind::Claim, 1, 2, 3);
        assert_eq!(sink.events()[0].events.len(), 1);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let sink = TraceSink::with_capacity(4);
        for i in 0..10u32 {
            sink.emit(EventKind::Yield, i, 0, 0);
        }
        let streams = sink.events();
        let events = &streams[0].events;
        assert_eq!(events.len(), 4);
        assert_eq!(streams[0].dropped, 6);
        let ids: Vec<u32> = events.iter().map(|e| e.a).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "newest four retained, oldest first");
        let stats = sink.stats();
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.retained, 4);
        assert_eq!(stats.dropped, 6);
    }

    #[test]
    fn each_thread_gets_its_own_named_lane() {
        let sink = TraceSink::new();
        sink.emit(EventKind::RunBegin, 1, 1, 1);
        let clone = Arc::clone(&sink);
        std::thread::Builder::new()
            .name("fg-test-worker".into())
            .spawn(move || {
                clone.emit(EventKind::Claim, 5, 0, 0);
                clone.emit(EventKind::Steal, 5, 0, 1);
            })
            .unwrap()
            .join()
            .unwrap();
        let streams = sink.events();
        assert_eq!(streams.len(), 2);
        let worker = streams.iter().find(|t| t.thread == "fg-test-worker").unwrap();
        assert_eq!(worker.events.len(), 2);
        assert_eq!(sink.stats().threads, 2);
    }

    #[test]
    fn cache_eviction_reuses_the_registered_lane() {
        // Create more sinks than the per-thread cache holds and interleave
        // emits: every event must still land on one lane per (sink,
        // thread) pair.
        let sinks: Vec<Arc<TraceSink>> = (0..CACHE_LIMIT + 2).map(|_| TraceSink::new()).collect();
        for round in 0..3u32 {
            for sink in &sinks {
                sink.emit(EventKind::Yield, round, 0, 0);
            }
        }
        for sink in &sinks {
            let streams = sink.events();
            assert_eq!(streams.len(), 1, "one lane despite cache eviction");
            assert_eq!(streams[0].events.len(), 3);
        }
    }

    #[test]
    fn merged_events_interleave_across_threads_by_time() {
        let sink = TraceSink::new();
        sink.emit(EventKind::RunBegin, 1, 1, 1);
        let clone = Arc::clone(&sink);
        std::thread::spawn(move || clone.emit(EventKind::Claim, 3, 0, 0)).join().unwrap();
        sink.emit(EventKind::RunEnd, 0, 0, 0);
        let merged = sink.merged_events();
        assert_eq!(merged.len(), 3);
        assert!(merged.windows(2).all(|w| w[0].1.nanos <= w[1].1.nanos));
        assert_eq!(merged[0].1.kind, EventKind::RunBegin);
        assert_eq!(merged[2].1.kind, EventKind::RunEnd);
    }

    #[test]
    fn correlation_ids_are_unique_and_nonzero() {
        let sink = TraceSink::new();
        let ids: Vec<u32> = (0..100).map(|_| sink.next_id()).collect();
        assert!(ids.iter().all(|&id| id != 0));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }
}
