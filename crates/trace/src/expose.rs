//! Prometheus-style text exposition of service/pool/trace metrics.
//!
//! [`expose`] renders the standard text format (`# HELP` / `# TYPE` headers,
//! one `name value` sample line per metric) from whichever snapshots the
//! caller has — pass `None` for subsystems that are not running (a pool-less
//! service, an engine with no sink). The output is a complete `/metrics`
//! response body: an HTTP front door only has to put a status line in front
//! of it.

use std::fmt::Write as _;

use fg_metrics::{PoolSnapshot, ServiceSnapshot};

use crate::sink::TraceStats;

/// Append one metric: HELP/TYPE headers plus the sample line.
fn metric(out: &mut String, name: &str, kind: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    if value.fract() == 0.0 && value.abs() < 1e15 {
        let _ = writeln!(out, "{name} {}", value as i64);
    } else {
        let _ = writeln!(out, "{name} {value}");
    }
}

/// Render the Prometheus text exposition for the given snapshots.
pub fn expose(
    service: Option<&ServiceSnapshot>,
    pool: Option<&PoolSnapshot>,
    trace: Option<&TraceStats>,
) -> String {
    let mut out = String::new();
    if let Some(s) = service {
        metric(
            &mut out,
            "fg_service_submitted_total",
            "counter",
            "Queries offered to submit (admitted + rejected + cache hits).",
            s.submitted as f64,
        );
        metric(
            &mut out,
            "fg_service_admitted_total",
            "counter",
            "Queries accepted into the pending queue.",
            s.admitted as f64,
        );
        metric(
            &mut out,
            "fg_service_rejected_total",
            "counter",
            "Queries shed by admission control.",
            s.rejected as f64,
        );
        metric(
            &mut out,
            "fg_service_cache_hits_total",
            "counter",
            "Queries answered from the result cache.",
            s.cache_hits as f64,
        );
        metric(
            &mut out,
            "fg_service_cache_misses_total",
            "counter",
            "Queries that missed the result cache.",
            s.cache_misses as f64,
        );
        metric(
            &mut out,
            "fg_service_batches_dispatched_total",
            "counter",
            "Consolidated engine runs dispatched.",
            s.batches_dispatched as f64,
        );
        metric(
            &mut out,
            "fg_service_queries_batched_total",
            "counter",
            "Queries carried by dispatched batches.",
            s.queries_batched as f64,
        );
        metric(
            &mut out,
            "fg_service_mixed_runs_total",
            "counter",
            "Dispatched runs that consolidated >= 2 kernel cohorts.",
            s.mixed_runs as f64,
        );
        metric(
            &mut out,
            "fg_service_queue_depth",
            "gauge",
            "Current pending-queue depth.",
            s.queue_depth as f64,
        );
        metric(
            &mut out,
            "fg_service_mean_batch_occupancy",
            "gauge",
            "Mean queries per dispatched batch.",
            s.mean_batch_occupancy(),
        );
        metric(
            &mut out,
            "fg_service_cache_hit_rate",
            "gauge",
            "Result-cache hit rate in [0, 1].",
            s.cache_hit_rate(),
        );
        metric(
            &mut out,
            "fg_service_mixed_run_rate",
            "gauge",
            "Fraction of runs that shared a pass across kernels, in [0, 1].",
            s.mixed_run_rate(),
        );
        metric(
            &mut out,
            "fg_service_epochs_advanced_total",
            "counter",
            "Snapshot epochs published (one per non-empty mutation fold).",
            s.epochs_advanced as f64,
        );
        metric(
            &mut out,
            "fg_service_partitions_rematerialized_total",
            "counter",
            "Dirty partitions re-materialized across epoch advances.",
            s.partitions_rematerialized as f64,
        );
        metric(
            &mut out,
            "fg_service_partitions_shared_total",
            "counter",
            "Clean partitions Arc-shared with the previous epoch across advances.",
            s.partitions_shared as f64,
        );
        metric(
            &mut out,
            "fg_service_snapshots_reclaimed_total",
            "counter",
            "Retired epoch snapshots whose storage was reclaimed.",
            s.snapshots_reclaimed as f64,
        );
        metric(
            &mut out,
            "fg_service_oldest_pinned_epoch_lag",
            "gauge",
            "Current epoch minus the oldest epoch still pinned by a run.",
            s.oldest_pinned_epoch_lag as f64,
        );
        metric(
            &mut out,
            "fg_service_dirty_rematerialize_frac",
            "gauge",
            "Fraction of partition slots rebuilt (vs shared) across advances, in [0, 1].",
            s.dirty_rematerialize_frac(),
        );
        metric(
            &mut out,
            "fg_service_latency_p50_seconds",
            "gauge",
            "Median submit-to-result latency.",
            s.latency_p50.as_secs_f64(),
        );
        metric(
            &mut out,
            "fg_service_latency_p99_seconds",
            "gauge",
            "99th-percentile submit-to-result latency.",
            s.latency_p99.as_secs_f64(),
        );
    }
    if let Some(p) = pool {
        metric(
            &mut out,
            "fg_pool_threads_spawned_total",
            "counter",
            "OS worker threads ever spawned by the pool.",
            p.threads_spawned as f64,
        );
        metric(
            &mut out,
            "fg_pool_dispatches_total",
            "counter",
            "Engine runs dispatched onto the pool.",
            p.dispatches as f64,
        );
        metric(
            &mut out,
            "fg_pool_parks_total",
            "counter",
            "Worker park events between runs.",
            p.parks as f64,
        );
        metric(
            &mut out,
            "fg_pool_unparks_total",
            "counter",
            "Worker wake events for dispatched runs.",
            p.unparks as f64,
        );
        metric(
            &mut out,
            "fg_pool_mailbox_reuse_rate",
            "gauge",
            "Fraction of per-run mailboxes recycled from the arena, in [0, 1].",
            p.mailbox_reuse_rate(),
        );
    }
    if let Some(t) = trace {
        metric(
            &mut out,
            "fg_trace_threads",
            "gauge",
            "Threads that have registered a trace lane.",
            t.threads as f64,
        );
        metric(
            &mut out,
            "fg_trace_events_retained",
            "gauge",
            "Trace events currently retained across lanes.",
            t.retained as f64,
        );
        metric(
            &mut out,
            "fg_trace_events_dropped_total",
            "counter",
            "Trace events lost to ring wrap-around.",
            t.dropped as f64,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_has_help_type_and_sample_per_metric() {
        let service =
            ServiceSnapshot { submitted: 10, cache_hits: 3, cache_misses: 7, ..Default::default() };
        let pool = PoolSnapshot { threads_spawned: 4, dispatches: 9, ..Default::default() };
        let trace = TraceStats { threads: 2, retained: 100, dropped: 5, lane_capacity: 1024 };
        let text = expose(Some(&service), Some(&pool), Some(&trace));
        for line in text.lines() {
            assert!(
                line.starts_with("# HELP")
                    || line.starts_with("# TYPE")
                    || line.split(' ').count() == 2,
                "malformed line: {line}"
            );
        }
        assert!(text.contains("fg_service_submitted_total 10"), "{text}");
        assert!(text.contains("fg_service_cache_hit_rate 0.3"), "{text}");
        assert!(text.contains("fg_service_epochs_advanced_total 0"), "{text}");
        assert!(text.contains("fg_service_oldest_pinned_epoch_lag 0"), "{text}");
        assert!(text.contains("fg_pool_dispatches_total 9"), "{text}");
        assert!(text.contains("fg_trace_events_dropped_total 5"), "{text}");
        // Every sample line is preceded by its TYPE line.
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if !line.starts_with('#') {
                let name = line.split(' ').next().unwrap();
                assert!(lines[i - 1].contains(name), "TYPE precedes {name}");
            }
        }
    }

    #[test]
    fn absent_subsystems_are_omitted() {
        assert!(expose(None, None, None).is_empty());
        let text = expose(None, None, Some(&TraceStats::default()));
        assert!(text.contains("fg_trace_threads"));
        assert!(!text.contains("fg_service_"));
        assert!(!text.contains("fg_pool_"));
    }

    #[test]
    fn zero_denominator_rates_expose_as_zero_not_nan() {
        let text = expose(Some(&ServiceSnapshot::default()), Some(&PoolSnapshot::default()), None);
        assert!(!text.contains("NaN"), "{text}");
        assert!(text.contains("fg_service_mixed_run_rate 0"), "{text}");
        assert!(text.contains("fg_service_dirty_rematerialize_frac 0"), "{text}");
        assert!(text.contains("fg_pool_mailbox_reuse_rate 0"), "{text}");
    }
}
