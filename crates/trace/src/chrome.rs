//! Chrome trace-event JSON export (and a validating parser).
//!
//! [`export`] renders a [`TraceSink`]'s event streams in the Chrome
//! trace-event format — load the file in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see the run as named per-thread tracks:
//!
//! * Span pairs ([`EventKind::RunBegin`]/`RunEnd`,
//!   `PartitionVisitBegin`/`End`, `BatchBegin`/`End`) become `B`/`E`
//!   duration slices.
//! * Point events (claims, steals, drains, parks, yields, …) become `i`
//!   thread-scoped instants.
//! * Each service ticket's life is stitched across threads with flow
//!   arrows: `Submit` starts a flow (`ph:"s"`), `JoinBatch` steps it onto
//!   the batcher thread (`ph:"t"`), `Resolve` ends it (`ph:"f"`), all
//!   keyed by the ticket id — in the UI every query is one arrow from its
//!   submitting client, through the batch slice that ran it, to its
//!   resolution.
//!
//! The JSON is hand-rolled (this workspace vendors no `serde_json`), in the
//! same spirit as `fg-bench`'s `PerfReport` codec: a format we fully
//! control, plus [`parse`] — a brace/quote-aware validating scanner used by
//! tests and CI to prove emitted traces actually load.

use std::fmt::Write as _;

use crate::event::EventKind;
use crate::sink::TraceSink;

/// Escape a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microsecond timestamp with sub-µs precision, as Chrome expects.
fn micros(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1000.0)
}

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Writer {
        Writer { out: String::from("{\"traceEvents\":[\n"), first: true }
    }

    /// Append one pre-rendered event object.
    fn push(&mut self, object: String) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str(&object);
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Render a `B`/`E`/`i` event object.
fn phase_event(name: &str, ph: &str, tid: u64, nanos: u64, args: &[(&str, u64)]) -> String {
    let mut obj = format!(
        "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{}",
        escape(name),
        micros(nanos)
    );
    if ph == "i" {
        obj.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        obj.push_str(",\"args\":{");
        for (i, (key, value)) in args.iter().enumerate() {
            if i > 0 {
                obj.push(',');
            }
            let _ = write!(obj, "\"{key}\":{value}");
        }
        obj.push('}');
    }
    obj.push('}');
    obj
}

/// Render a flow event (`s`/`t`/`f`) carrying a correlation id.
fn flow_event(ph: &str, tid: u64, nanos: u64, id: u64) -> String {
    let mut obj = format!(
        "{{\"name\":\"ticket\",\"cat\":\"ticket\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\
         \"ts\":{},\"id\":{id}",
        micros(nanos)
    );
    if ph == "f" {
        obj.push_str(",\"bp\":\"e\"");
    }
    obj.push('}');
    obj
}

/// Export every retained event as Chrome trace-event JSON.
pub fn export(sink: &TraceSink) -> String {
    let mut w = Writer::new();
    for (lane, stream) in sink.events().iter().enumerate() {
        let tid = lane as u64 + 1;
        w.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"ts\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(&stream.thread)
        ));
        // Track B/E nesting so a stream truncated by ring wrap-around (a
        // dropped Begin or End) still renders as balanced slices.
        let mut depth = 0u32;
        let mut last_nanos = 0u64;
        for event in &stream.events {
            last_nanos = event.nanos;
            let name = event.kind.name();
            match event.kind {
                EventKind::RunBegin => {
                    depth += 1;
                    w.push(phase_event(
                        name,
                        "B",
                        tid,
                        event.nanos,
                        &[
                            ("queries", event.a as u64),
                            ("workers", event.b as u64),
                            ("groups", event.c as u64),
                        ],
                    ));
                }
                EventKind::PartitionVisitBegin => {
                    depth += 1;
                    w.push(phase_event(
                        name,
                        "B",
                        tid,
                        event.nanos,
                        &[
                            ("partition", event.a as u64),
                            ("ops", event.b as u64),
                            ("groups", event.c as u64),
                        ],
                    ));
                }
                EventKind::BatchBegin => {
                    depth += 1;
                    w.push(phase_event(
                        name,
                        "B",
                        tid,
                        event.nanos,
                        &[
                            ("batch", event.a as u64),
                            ("queries", event.b as u64),
                            ("cohorts", event.c as u64),
                        ],
                    ));
                }
                EventKind::RunEnd | EventKind::PartitionVisitEnd | EventKind::BatchEnd => {
                    if depth > 0 {
                        depth -= 1;
                        w.push(phase_event(name, "E", tid, event.nanos, &[]));
                    }
                }
                EventKind::Submit => {
                    w.push(phase_event(
                        name,
                        "i",
                        tid,
                        event.nanos,
                        &[("ticket", event.a as u64), ("kernel", event.b as u64)],
                    ));
                    w.push(flow_event("s", tid, event.nanos, event.a as u64));
                }
                EventKind::JoinBatch => {
                    w.push(phase_event(
                        name,
                        "i",
                        tid,
                        event.nanos,
                        &[("ticket", event.a as u64), ("batch", event.b as u64)],
                    ));
                    w.push(flow_event("t", tid, event.nanos, event.a as u64));
                }
                EventKind::Resolve => {
                    w.push(phase_event(name, "i", tid, event.nanos, &[("ticket", event.a as u64)]));
                    w.push(flow_event("f", tid, event.nanos, event.a as u64));
                }
                EventKind::EpochPin | EventKind::EpochUnpin => {
                    w.push(phase_event(
                        name,
                        "i",
                        tid,
                        event.nanos,
                        &[("epoch", event.a as u64), ("pins", event.b as u64)],
                    ));
                }
                EventKind::EpochAdvance => {
                    w.push(phase_event(
                        name,
                        "i",
                        tid,
                        event.nanos,
                        &[
                            ("epoch", event.a as u64),
                            ("rematerialized", event.b as u64),
                            ("shared", event.c as u64),
                        ],
                    ));
                }
                EventKind::PartitionDecode => {
                    w.push(phase_event(
                        name,
                        "i",
                        tid,
                        event.nanos,
                        &[("query", event.a as u64), ("partition", event.b as u64)],
                    ));
                }
                EventKind::DeltaFold => {
                    w.push(phase_event(
                        name,
                        "i",
                        tid,
                        event.nanos,
                        &[
                            ("mutations", event.a as u64),
                            ("dirty", event.b as u64),
                            ("epoch", event.c as u64),
                        ],
                    ));
                }
                _ => {
                    w.push(phase_event(
                        name,
                        "i",
                        tid,
                        event.nanos,
                        &[("a", event.a as u64), ("b", event.b as u64), ("c", event.c as u64)],
                    ));
                }
            }
        }
        for _ in 0..depth {
            w.push(phase_event("truncated", "E", tid, last_nanos, &[]));
        }
    }
    w.finish()
}

/// One parsed Chrome trace event (the fields this crate emits).
#[derive(Clone, Debug, PartialEq)]
pub struct ChromeEvent {
    /// Event name (slice/instant name, or `thread_name` for metadata).
    pub name: String,
    /// Phase: `B`, `E`, `i`, `s`, `t`, `f`, or `M`.
    pub ph: String,
    /// Track (1 + lane index in the source sink).
    pub tid: u64,
    /// Timestamp in microseconds.
    pub ts: f64,
    /// Flow correlation id, when present.
    pub id: Option<u64>,
    /// Raw text of the `args` object (empty when absent).
    pub args: String,
}

impl ChromeEvent {
    /// Extract an integer field from the raw `args` text.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        number_field(&self.args, key).map(|v| v as u64)
    }

    /// Extract a string field from the raw `args` text.
    pub fn arg_str(&self, key: &str) -> Option<String> {
        string_field(&self.args, key)
    }
}

/// Find `"key": <number>` in `text`.
fn number_field(text: &str, key: &str) -> Option<f64> {
    let pattern = format!("\"{key}\"");
    let idx = text.find(&pattern)?;
    let rest = text[idx + pattern.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Find `"key": "<string>"` in `text` (unescapes the simple escapes
/// [`escape`] produces).
fn string_field(text: &str, key: &str) -> Option<String> {
    let pattern = format!("\"{key}\"");
    let idx = text.find(&pattern)?;
    let rest = text[idx + pattern.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Split the body of a JSON array into top-level `{...}` object slices,
/// respecting nesting and string literals. Errors on structural damage.
fn split_objects(body: &str) -> Result<Vec<&str>, String> {
    let mut objects = Vec::new();
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                let start = i;
                let mut depth = 0usize;
                let mut in_string = false;
                let mut escaped = false;
                loop {
                    if i >= bytes.len() {
                        return Err("unterminated object in traceEvents".into());
                    }
                    let c = bytes[i];
                    if in_string {
                        if escaped {
                            escaped = false;
                        } else if c == b'\\' {
                            escaped = true;
                        } else if c == b'"' {
                            in_string = false;
                        }
                    } else {
                        match c {
                            b'"' => in_string = true,
                            b'{' => depth += 1,
                            b'}' => {
                                depth -= 1;
                                if depth == 0 {
                                    objects.push(&body[start..=i]);
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    i += 1;
                }
            }
            b',' | b' ' | b'\t' | b'\n' | b'\r' => {}
            other => {
                return Err(format!("unexpected byte {:?} in traceEvents array", other as char))
            }
        }
        i += 1;
    }
    Ok(objects)
}

/// Extract the raw `args` object text from one event object.
fn args_text(object: &str) -> String {
    let Some(idx) = object.find("\"args\"") else { return String::new() };
    let rest = &object[idx + "\"args\"".len()..];
    let Some(open) = rest.find('{') else { return String::new() };
    let body = &rest[open..];
    let bytes = body.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &c) in bytes.iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == b'\\' {
                escaped = true;
            } else if c == b'"' {
                in_string = false;
            }
            continue;
        }
        match c {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return body[..=i].to_string();
                }
            }
            _ => {}
        }
    }
    String::new()
}

/// Parse Chrome trace-event JSON (the dialect [`export`] emits: an object
/// with a `traceEvents` array). Returns the parsed events or a descriptive
/// error — used by tests and CI to validate that emitted traces load.
pub fn parse(input: &str) -> Result<Vec<ChromeEvent>, String> {
    let trimmed = input.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return Err("not a JSON object".into());
    }
    let idx = trimmed.find("\"traceEvents\"").ok_or("missing \"traceEvents\"")?;
    let rest = &trimmed[idx + "\"traceEvents\"".len()..];
    let rest = rest.trim_start().strip_prefix(':').ok_or("\"traceEvents\" not followed by ':'")?;
    let rest = rest.trim_start().strip_prefix('[').ok_or("\"traceEvents\" is not an array")?;
    let close = find_array_end(rest).ok_or("unterminated traceEvents array")?;
    let body = &rest[..close];

    let mut events = Vec::new();
    for object in split_objects(body)? {
        let name = string_field(object, "name")
            .ok_or_else(|| format!("event missing \"name\": {object}"))?;
        let ph =
            string_field(object, "ph").ok_or_else(|| format!("event missing \"ph\": {object}"))?;
        if !matches!(ph.as_str(), "B" | "E" | "i" | "s" | "t" | "f" | "M") {
            return Err(format!("unknown phase {ph:?} in {object}"));
        }
        let tid = number_field(object, "tid")
            .ok_or_else(|| format!("event missing \"tid\": {object}"))? as u64;
        let ts =
            number_field(object, "ts").ok_or_else(|| format!("event missing \"ts\": {object}"))?;
        let id = number_field(object, "id").map(|v| v as u64);
        events.push(ChromeEvent { name, ph, tid, ts, id, args: args_text(object) });
    }
    Ok(events)
}

/// Index of the `]` closing the array whose body starts at `rest[0]`.
fn find_array_end(rest: &str) -> Option<usize> {
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &c) in bytes.iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == b'\\' {
                escaped = true;
            } else if c == b'"' {
                in_string = false;
            }
            continue;
        }
        match c {
            b'"' => in_string = true,
            b'[' | b'{' => depth += 1,
            b']' if depth == 0 => return Some(i),
            b']' | b'}' => depth = depth.checked_sub(1)?,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;

    #[test]
    fn export_round_trips_through_parse() {
        let sink = TraceSink::new();
        sink.emit(EventKind::RunBegin, 8, 2, 1);
        sink.emit(EventKind::PartitionVisitBegin, 3, 40, 1);
        sink.emit(EventKind::Yield, 5, 3, 0);
        sink.emit(EventKind::PartitionVisitEnd, 3, 0, 0);
        sink.emit(EventKind::RunEnd, 0, 0, 0);
        let json = export(&sink);
        let events = parse(&json).unwrap();
        // Metadata + 2 B + 2 E + 1 instant.
        assert_eq!(events.len(), 6);
        assert_eq!(events[0].ph, "M");
        assert!(!events[0].arg_str("name").unwrap().is_empty());
        let begins: Vec<_> = events.iter().filter(|e| e.ph == "B").collect();
        assert_eq!(begins.len(), 2);
        assert_eq!(begins[0].name, "run");
        assert_eq!(begins[0].arg_u64("queries"), Some(8));
        assert_eq!(begins[1].arg_u64("partition"), Some(3));
        assert_eq!(begins[1].arg_u64("ops"), Some(40));
        assert_eq!(events.iter().filter(|e| e.ph == "E").count(), 2);
        let instant = events.iter().find(|e| e.ph == "i").unwrap();
        assert_eq!(instant.name, "yield");
    }

    #[test]
    fn ticket_flows_carry_the_correlation_id() {
        let sink = TraceSink::new();
        sink.emit(EventKind::Submit, 42, 1, 0);
        sink.emit(EventKind::JoinBatch, 42, 7, 0);
        sink.emit(EventKind::BatchBegin, 7, 1, 1);
        sink.emit(EventKind::BatchEnd, 7, 0, 0);
        sink.emit(EventKind::Resolve, 42, 0, 0);
        let events = parse(&export(&sink)).unwrap();
        let flow: Vec<_> = events.iter().filter(|e| e.name == "ticket").collect();
        assert_eq!(flow.len(), 3);
        assert_eq!(flow[0].ph, "s");
        assert_eq!(flow[1].ph, "t");
        assert_eq!(flow[2].ph, "f");
        assert!(flow.iter().all(|e| e.id == Some(42)));
        // Flow steps are time-ordered.
        assert!(flow.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn truncated_streams_render_balanced_slices() {
        // Capacity 2: the Begin pair is overwritten, leaving dangling Ends,
        // then an unmatched Begin survives at the tail.
        let sink = TraceSink::with_capacity(2);
        sink.emit(EventKind::RunBegin, 1, 1, 1);
        sink.emit(EventKind::PartitionVisitBegin, 0, 1, 1);
        sink.emit(EventKind::PartitionVisitEnd, 0, 0, 0);
        sink.emit(EventKind::RunBegin, 1, 1, 1);
        let events = parse(&export(&sink)).unwrap();
        let begins = events.iter().filter(|e| e.ph == "B").count();
        let ends = events.iter().filter(|e| e.ph == "E").count();
        assert_eq!(begins, ends, "every B has an E even under truncation");
    }

    #[test]
    fn thread_names_become_metadata_tracks() {
        let sink = TraceSink::new();
        let clone = std::sync::Arc::clone(&sink);
        std::thread::Builder::new()
            .name("fg-pool-0".into())
            .spawn(move || clone.emit(EventKind::Claim, 1, 0, 0))
            .unwrap()
            .join()
            .unwrap();
        let events = parse(&export(&sink)).unwrap();
        let meta: Vec<_> = events.iter().filter(|e| e.ph == "M").collect();
        assert_eq!(meta.len(), 1);
        assert_eq!(meta[0].arg_str("name").as_deref(), Some("fg-pool-0"));
        assert_eq!(meta[0].name, "thread_name");
    }

    #[test]
    fn parse_rejects_structural_damage() {
        assert!(parse("").is_err());
        assert!(parse("{}").is_err());
        assert!(parse("{\"traceEvents\": 3}").is_err());
        assert!(parse("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err(), "missing ph");
        assert!(
            parse("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"Z\",\"tid\":1,\"ts\":0}]}").is_err()
        );
        assert!(parse("{\"traceEvents\":[{\"name\":\"x\",").is_err());
        // A valid minimal event parses.
        let ok = parse(
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\
                        \"ts\":1.5}]}",
        )
        .unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].ts, 1.5);
    }

    #[test]
    fn empty_sink_exports_an_empty_valid_trace() {
        let sink = TraceSink::new();
        let events = parse(&export(&sink)).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn escaped_thread_labels_survive() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
        assert_eq!(string_field("\"name\": \"a\\\"b\\\\c\\u000a\"", "name").unwrap(), "a\"b\\c\n");
    }
}
