//! Per-run profile summaries: phase wall times and work-shape histograms.
//!
//! A [`RunProfile`] is attached to engine run results when
//! `EngineConfig::profile` is set. It is computed from cheap counters the
//! run maintains anyway (phase stopwatch marks, one histogram record per
//! partition visit) — **not** from the trace event stream — so profiles
//! work with no [`TraceSink`](crate::TraceSink) attached and cost nothing
//! when the flag is off.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i` holds
/// values in `[2^(i-1), 2^i)`, the last bucket saturates.
const BUCKETS: usize = 17;

/// A compact log2-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

/// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`, clamped.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Lower bound of bucket `i` (for display).
fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty — never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples in the bucket whose lower bound is `floor` (a power of two,
    /// or 0). Returns 0 for a non-bucket-boundary argument.
    pub fn bucket_count(&self, floor: u64) -> u64 {
        (0..BUCKETS).find(|&i| bucket_floor(i) == floor).map_or(0, |i| self.buckets[i])
    }
}

impl fmt::Display for Histogram {
    /// One line: `count / mean / max`, then the non-empty buckets as
    /// `lower-bound:count` pairs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.1} max={}", self.count, self.mean(), self.max)?;
        if self.count > 0 {
            write!(f, " |")?;
            for (i, &n) in self.buckets.iter().enumerate() {
                if n > 0 {
                    write!(f, " {}+:{}", bucket_floor(i), n)?;
                }
            }
        }
        Ok(())
    }
}

/// A [`Histogram`] writable concurrently from many threads (relaxed
/// atomics — per-run totals, not a synchronisation point).
#[derive(Debug, Default)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Materialise the current totals.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            ..Histogram::default()
        };
        for (i, bucket) in self.buckets.iter().enumerate() {
            h.buckets[i] = bucket.load(Ordering::Relaxed);
        }
        h
    }
}

/// Wall time spent in each phase of one engine run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Setup: state/buffer allocation and source seeding.
    pub init: Duration,
    /// The partition-at-a-time main loop (or the parallel crew's run).
    pub processing: Duration,
    /// Teardown: storage recycling, measurement assembly.
    pub finalize: Duration,
}

impl PhaseTimes {
    /// Sum of the three phases.
    pub fn total(&self) -> Duration {
        self.init + self.processing + self.finalize
    }
}

/// A per-run profile: where one engine run spent its time and how the work
/// was shaped.
#[derive(Clone, Debug, Default)]
pub struct RunProfile {
    /// Per-phase wall times.
    pub phases: PhaseTimes,
    /// Worker threads that executed the run (1 = serial).
    pub workers: u32,
    /// Partition visits that drained at least one operation.
    pub partition_visits: u64,
    /// Operations consolidated per partition visit.
    pub visit_ops: Histogram,
    /// Partition claims stolen from another worker's runnable set, per
    /// worker (empty for serial runs).
    pub steals_per_worker: Histogram,
    /// Total steals across workers.
    pub steals: u64,
    /// Queries that yielded a partition under the yield policy.
    pub yields: u64,
}

impl fmt::Display for RunProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run profile ({} worker{}): total {:.3?}",
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.phases.total()
        )?;
        writeln!(
            f,
            "  phases     : init {:.3?}, processing {:.3?}, finalize {:.3?}",
            self.phases.init, self.phases.processing, self.phases.finalize
        )?;
        writeln!(f, "  visits     : {} (ops/visit {})", self.partition_visits, self.visit_ops)?;
        write!(f, "  steals     : {}", self.steals)?;
        if self.steals_per_worker.count() > 0 {
            write!(f, " (per worker {})", self.steals_per_worker)?;
        }
        writeln!(f)?;
        write!(f, "  yields     : {}", self.yields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 0, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket_count(0), 2); // the two zeros
        assert_eq!(h.bucket_count(1), 1); // 1
        assert_eq!(h.bucket_count(2), 2); // 2, 3
        assert_eq!(h.bucket_count(4), 2); // 4, 7
        assert_eq!(h.bucket_count(8), 1); // 8
        assert_eq!(h.bucket_count(512), 1); // 1000
        assert!((h.mean() - 1025.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_mean_is_zero_not_nan() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(format!("{h}"), "n=0 mean=0.0 max=0");
    }

    #[test]
    fn huge_samples_saturate_into_the_last_bucket() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(1 << 40);
        assert_eq!(h.bucket_count(1 << 15), 2);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn atomic_histogram_matches_serial_equivalent() {
        let atomic = AtomicHistogram::default();
        let mut serial = Histogram::default();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let atomic = &atomic;
                scope.spawn(move || {
                    for v in 0..64 {
                        atomic.record(t * 64 + v);
                    }
                });
            }
        });
        for t in 0..4u64 {
            for v in 0..64 {
                serial.record(t * 64 + v);
            }
        }
        assert_eq!(atomic.snapshot(), serial);
    }

    #[test]
    fn profile_display_is_one_screen() {
        let mut profile = RunProfile { workers: 2, partition_visits: 12, ..Default::default() };
        profile.phases.processing = Duration::from_millis(5);
        for ops in [1, 10, 100] {
            profile.visit_ops.record(ops);
        }
        profile.steals = 3;
        profile.steals_per_worker.record(1);
        profile.steals_per_worker.record(2);
        let text = format!("{profile}");
        assert!(text.contains("2 workers"), "{text}");
        assert!(text.contains("visits     : 12"), "{text}");
        assert!(text.contains("steals     : 3"), "{text}");
        assert!(text.lines().count() <= 6, "{text}");
    }
}
