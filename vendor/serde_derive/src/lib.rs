//! No-op `Serialize` / `Deserialize` derives for the offline serde shim.
//!
//! The shim's traits are blanket-implemented for all types, so the derives
//! only need to exist for `#[derive(Serialize, Deserialize)]` attributes to
//! parse; they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
