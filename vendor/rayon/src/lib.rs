//! Offline shim for the `rayon` crate.
//!
//! Implements the data-parallel API subset the workspace uses —
//! `par_iter`/`into_par_iter` with `map`, `filter_map`, `enumerate`, `fold`,
//! `reduce`, `for_each`, `collect`, plus `current_num_threads` and
//! `ThreadPoolBuilder::install` — on top of `std::thread::scope`.
//!
//! Unlike rayon there is no persistent work-stealing pool: each parallel
//! adapter chunks its (materialized) input across `current_num_threads()`
//! OS threads spawned for that call. That keeps semantics (including
//! panic propagation and deterministic output order) while staying
//! dependency-free. For the partition-at-a-time workloads in this repo the
//! per-call spawn cost is dwarfed by per-chunk work; `ThreadPoolBuilder`
//! exists so thread-scaling experiments can still cap the worker count.

use std::cell::Cell;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Per-thread override installed by `ThreadPool::install`.
    static NUM_THREADS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel adapters will use on this thread.
pub fn current_num_threads() -> usize {
    let overridden = NUM_THREADS_OVERRIDE.with(|c| c.get());
    if overridden > 0 {
        overridden
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for thread-scaling experiments.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// Error type for API parity; the shim builder cannot fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" that scopes a thread-count override rather than owning threads.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing parallel adapters.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        NUM_THREADS_OVERRIDE.with(|c| {
            let prev = c.replace(self.num_threads);
            struct Restore<'a>(&'a Cell<usize>, usize);
            impl Drop for Restore<'_> {
                fn drop(&mut self) {
                    self.0.set(self.1);
                }
            }
            let _restore = Restore(c, prev);
            f()
        })
    }

    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// Apply `f` to every item on a scoped thread team, preserving input order.
fn par_map_vec<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::new();
    let mut rest = items;
    while rest.len() > chunk_size {
        let tail = rest.split_off(chunk_size);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            out.append(&mut handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// A materialized parallel iterator: adapters evaluate eagerly in parallel.
pub struct ParIter<T> {
    items: Vec<T>,
}

pub trait ParallelIterator: Sized {
    type Item: Send;

    fn into_vec(self) -> Vec<Self::Item>;

    fn map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync + Send,
    {
        ParIter { items: par_map_vec(self.into_vec(), &f) }
    }

    fn filter_map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(Self::Item) -> Option<O> + Sync + Send,
    {
        ParIter { items: par_map_vec(self.into_vec(), &f).into_iter().flatten().collect() }
    }

    fn filter<F>(self, f: F) -> ParIter<Self::Item>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        self.filter_map(move |item| if f(&item) { Some(item) } else { None })
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        par_map_vec(self.into_vec(), &f);
    }

    fn enumerate(self) -> ParIter<(usize, Self::Item)> {
        ParIter { items: self.into_vec().into_iter().enumerate().collect() }
    }

    /// Per-chunk sequential fold producing one accumulator per worker chunk
    /// (rayon contract: follow with `reduce` to combine them).
    fn fold<Acc, Id, F>(self, identity: Id, fold_op: F) -> ParIter<Acc>
    where
        Acc: Send,
        Id: Fn() -> Acc + Sync + Send,
        F: Fn(Acc, Self::Item) -> Acc + Sync + Send,
    {
        let items = self.into_vec();
        let threads = current_num_threads().max(1);
        let chunk_size = items.len().div_ceil(threads).max(1);
        let mut chunks: Vec<Vec<Self::Item>> = Vec::new();
        let mut rest = items;
        while rest.len() > chunk_size {
            let tail = rest.split_off(chunk_size);
            chunks.push(std::mem::replace(&mut rest, tail));
        }
        if !rest.is_empty() || chunks.is_empty() {
            chunks.push(rest);
        }
        let identity = &identity;
        let fold_op = &fold_op;
        let accs = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().fold(identity(), fold_op)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect::<Vec<Acc>>()
        });
        ParIter { items: accs }
    }

    fn reduce<Id, F>(self, identity: Id, reduce_op: F) -> Self::Item
    where
        Id: Fn() -> Self::Item + Sync + Send,
        F: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.into_vec().into_iter().fold(identity(), reduce_op)
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.into_vec().into_iter().sum()
    }

    fn count(self) -> usize {
        self.into_vec().len()
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.into_vec().into_iter().collect()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_vec(self) -> Vec<T> {
        self.items
    }
}

/// Conversion into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_into_par_iter!(u32, u64, usize, i32, i64);

/// Borrowing conversion (`par_iter`) for slices and anything deref-to-slice.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter_reduce() {
        let any_even =
            (0u32..100).into_par_iter().map(|x| x % 2 == 0).reduce(|| false, |a, b| a | b);
        assert!(any_even);
    }

    #[test]
    fn fold_then_reduce_matches_sum() {
        let v: Vec<u64> = (1u64..=100).collect();
        let total = v.par_iter().fold(|| 0u64, |acc, &x| acc + x).reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn filter_map_drops_none() {
        let v: Vec<u32> = (0u32..50).collect();
        let odd: Vec<u32> = v.par_iter().filter_map(|&x| (x % 2 == 1).then_some(x)).collect();
        assert_eq!(odd.len(), 25);
        assert!(odd.iter().all(|x| x % 2 == 1));
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn enumerate_is_sequentially_indexed() {
        let v = vec!["a", "b", "c"];
        let idx: Vec<(usize, &&str)> = v.par_iter().enumerate().collect();
        assert_eq!(idx.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }
}
