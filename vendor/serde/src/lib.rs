//! Offline shim for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and measurement
//! types so they stay wire-ready, but nothing in-tree performs actual
//! serialization (reports are emitted as hand-built Markdown/CSV). This shim
//! keeps those derives compiling without the real dependency: the traits are
//! empty markers blanket-implemented for every type, and the derive macros
//! expand to nothing. Swapping back to crates.io serde is a Cargo.toml-only
//! change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize, Debug, PartialEq)]
    struct Probe {
        a: u32,
        b: String,
    }

    #[test]
    fn derives_and_traits_compile() {
        fn takes_serialize<T: crate::Serialize>(_: &T) {}
        let p = Probe { a: 1, b: "x".into() };
        takes_serialize(&p);
    }
}
