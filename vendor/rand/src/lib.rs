//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Provides `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! and `rngs::SmallRng` backed by xoshiro256++ seeded through SplitMix64 —
//! deterministic across platforms, which is all the workspace needs (synthetic
//! graph generation, shuffles, and random scheduling are always seeded).
//! Stream values differ from crates.io `rand`, so regenerated datasets are
//! stable within this repo but not bit-identical to upstream `rand` output.

pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    use crate::{RngCore, SeedableRng};

    /// xoshiro256++ generator (public-domain reference algorithm).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation; also guarantees a non-zero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }
}

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by `Rng::gen` (the `Standard` distribution).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Half-open low bound and inclusive high bound of the range.
    fn bounds(self) -> (T, T);
    fn is_empty_range(&self) -> bool;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        (self.start, T::from_u64(self.end.to_u64() - 1))
    }
    fn is_empty_range(&self) -> bool {
        self.end.to_u64() <= self.start.to_u64()
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        (*self.start(), *self.end())
    }
    fn is_empty_range(&self) -> bool {
        self.end().to_u64() < self.start().to_u64()
    }
}

/// User-facing RNG methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from an integer range (Lemire-style widening multiply
    /// with rejection for unbiasedness).
    fn gen_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T {
        assert!(!range.is_empty_range(), "cannot sample from empty range");
        let (lo, hi) = range.bounds();
        let span = hi.to_u64() - lo.to_u64();
        if span == u64::MAX {
            return T::from_u64(self.next_u64());
        }
        let n = span + 1;
        // Rejection sampling over the largest multiple of n that fits in u64.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return T::from_u64(lo.to_u64() + v % n);
            }
        }
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_rate_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
