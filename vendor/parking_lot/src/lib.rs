//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with the `parking_lot` API surface the
//! workspace uses: non-poisoning `lock()` / `read()` / `write()` that return
//! guards directly, plus `Condvar` with `wait` / `wait_for` / `notify_*`.
//! Poisoning is handled by unwrapping: a panic while holding a lock aborts the
//! operation that observes it, which matches how the workspace treats poisoned
//! locks (it doesn't).

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::{Duration, Instant};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion primitive with the `parking_lot::Mutex` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with the `parking_lot::Condvar` API subset.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| self.inner.wait(g).unwrap_or_else(|p| p.into_inner()));
    }

    /// Wait with a timeout measured from now.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, result) =
                self.inner.wait_timeout(g, timeout).unwrap_or_else(|p| p.into_inner());
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wait until a deadline.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Move a guard out of `&mut`, run `f` on it, and put the result back.
///
/// `std`'s condvar consumes and returns the guard while `parking_lot`'s takes
/// `&mut`; bridging needs a take/replace dance. The `None` window is invisible
/// to callers because `f` returns a live guard for the same mutex.
fn replace_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    struct AbortOnPanic;
    impl Drop for AbortOnPanic {
        fn drop(&mut self) {
            // Unwinding between the `read` and `write` below would double-drop
            // the guard (double unlock), which is UB — abort instead.
            std::process::abort();
        }
    }
    // SAFETY: `guard` is a valid initialized guard. We move it out, hand it to
    // `f` (which returns a live guard for the same mutex and lifetime), and
    // write the result back, so the caller's slot is never observed
    // uninitialized. The abort bomb rules out unwinding in between.
    unsafe {
        let g = std::ptr::read(guard);
        let bomb = AbortOnPanic;
        let new = f(g);
        std::mem::forget(bomb);
        std::ptr::write(guard, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_one();
        handle.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
