//! Offline shim for the `criterion` benchmark harness.
//!
//! Supports the API subset the workspace benches use (`benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`). Measurement is deliberately
//! simple — a fixed warm-up followed by `sample_size` timed samples, printing
//! min/mean/max — rather than criterion's statistical machinery. Good enough
//! to compare engines on the same machine; not a replacement for real
//! criterion runs.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` for one warm-up pass plus `sample_size` timed samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std_black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&mut self, id: &str, samples: &[Duration]) {
        let full = format!("{}/{}", self.name, id);
        if samples.is_empty() {
            println!("{full:<60} (no samples)");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        let mut line = String::new();
        let _ = write!(
            line,
            "{full:<60} time: [{} {} {}]  ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            samples.len()
        );
        println!("{line}");
        self.criterion.results.push((full, mean));
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Benchmark driver mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name.clone()).sample_size(10).bench_function("run", f);
        self
    }

    pub fn final_summary(self) {
        if !self.results.is_empty() {
            println!("\n{} benchmark(s) complete", self.results.len());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
            criterion.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `--bench` (and criterion-specific flags) arrive from `cargo
            // bench`; the shim runs everything unconditionally but must not
            // choke on them. `--test` means "just check the harness runs",
            // which is also satisfied by running everything.
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].0, "shim/noop");
        assert_eq!(c.results[1].0, "shim/param/7");
    }
}
