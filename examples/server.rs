//! `server` — the network front door, end to end over loopback TCP.
//!
//! Two modes:
//!
//! * **Demo** (default): start a traced service + [`ForkGraphServer`] on an
//!   ephemeral loopback port, drive it with four concurrent pipelining
//!   [`WireClient`] connections (mixed SSSP/BFS), verify every wire response
//!   against a direct serial oracle, scrape `/metrics` and `/healthz` over
//!   plain HTTP on the *same* port, dump the Chrome trace, and shut down
//!   gracefully. Exits non-zero on any mismatch — CI runs this.
//!
//! * **Listen** (`--listen [host:port]`, default `127.0.0.1:7071`): serve the
//!   deterministic `fg_bench::smoke::workload` graph until killed, for
//!   external load generators (`repro --wire-smoke --addr host:port`) and
//!   manual poking:
//!
//! ```text
//! cargo run --release --example server                      # self-checking demo
//! cargo run --release --example server -- --listen          # long-running server
//! curl http://127.0.0.1:7071/metrics                        # same port, HTTP dialect
//! ```

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use forkgraph::prelude::*;
use forkgraph::trace::TraceSink;

const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: u32 = 16;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--listen") {
        let addr = args.get(pos + 1).cloned().unwrap_or_else(|| "127.0.0.1:7071".to_string());
        listen(&addr);
    } else {
        demo();
    }
}

/// Long-running mode: serve the smoke workload (traced, so `/trace` works
/// against the live server) until killed.
fn listen(addr: &str) {
    let server = fg_bench::wire::start_traced_smoke_server(fg_bench::smoke::Scale::FULL, addr)
        .unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    println!("serving smoke workload on {}", server.local_addr());
    println!("  binary protocol : connect + magic FGW1 (see fg_server::WireClient)");
    println!(
        "  observability   : curl http://{}/metrics (and /healthz, /trace)",
        server.local_addr()
    );
    // Daemon mode, killed externally (CI kills the whole process).
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Self-checking demo: four pipelining clients, oracle-verified, plus the
/// HTTP surface, then a graceful shutdown.
fn demo() {
    let graph = forkgraph::graph::gen::rmat(12, 8, 42).with_random_weights(8, 42);
    let partitioned = Arc::new(PartitionedGraph::build(
        &graph,
        PartitionConfig::with_partitions(PartitionMethod::Multilevel, 12),
    ));
    println!(
        "graph: {} vertices, {} edges, {} partitions",
        graph.num_vertices(),
        graph.num_edges(),
        partitioned.num_partitions()
    );

    let sink = TraceSink::new();
    let service = ForkGraphService::start_traced(
        Arc::clone(&partitioned),
        EngineConfig::default().with_threads(4),
        ServiceConfig { batch_window: Duration::from_millis(3), ..ServiceConfig::default() },
        Arc::clone(&sink),
    );
    let server = ForkGraphServer::start(service, ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    println!("listening on {addr} (binary protocol + HTTP on one port)\n");

    // The serial oracle every wire response is checked against.
    let oracle = ForkGraphEngine::new(&partitioned, EngineConfig::default());
    let n = graph.num_vertices() as u32;

    // --- Four concurrent pipelining connections. --------------------------
    let verified: usize = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let oracle = &oracle;
                scope.spawn(move || {
                    let mut client = WireClient::connect(addr).expect("connect");
                    let mut sent: Vec<Request> = Vec::new();
                    for i in 0..QUERIES_PER_CLIENT {
                        let source = (c as u32 * 131 + i * 17) % n;
                        let correlation = i + 1;
                        let request = if i % 2 == 0 {
                            Request::new(correlation, "sssp", source)
                        } else {
                            Request::new(correlation, "bfs", source)
                        };
                        client.send_request(&request).expect("send");
                        sent.push(request);
                    }
                    client.flush().expect("flush");

                    // Responses arrive in completion order; match them up by
                    // correlation ID and verify against the oracle.
                    let mut responses: HashMap<u32, Response> = HashMap::new();
                    while responses.len() < sent.len() {
                        let response = client.recv().expect("recv");
                        responses.insert(response.correlation(), response);
                    }
                    let mut checked = 0;
                    for request in sent {
                        let response = responses.remove(&request.correlation).unwrap();
                        let payload = match response {
                            Response::Result { payload, .. } => payload,
                            other => panic!("query {request:?} failed: {other:?}"),
                        };
                        let matches = match request.kernel.as_str() {
                            "sssp" => {
                                payload
                                    == WirePayload::U64s(
                                        oracle.run_sssp(&[request.source]).per_query[0].clone(),
                                    )
                            }
                            _ => {
                                payload
                                    == WirePayload::U32s(
                                        oracle.run_bfs(&[request.source]).per_query[0].clone(),
                                    )
                            }
                        };
                        assert!(matches, "wire result for {request:?} diverged from the oracle");
                        checked += 1;
                    }
                    checked
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    println!(
        "verified {verified}/{} wire responses against the serial oracle",
        CLIENTS * QUERIES_PER_CLIENT as usize
    );
    assert_eq!(verified, CLIENTS * QUERIES_PER_CLIENT as usize);

    // --- The HTTP dialect on the same port. -------------------------------
    let health = http_get(addr, "/healthz");
    assert!(health.contains("ok"), "healthz: {health}");
    let metrics = http_get(addr, "/metrics");
    for family in ["fg_service_admitted_total", "fg_server_frames_out_total"] {
        assert!(metrics.contains(family), "missing {family}");
    }
    let interesting: Vec<&str> = metrics
        .lines()
        .filter(|l| {
            !l.starts_with('#')
                && (l.starts_with("fg_service_admitted")
                    || l.starts_with("fg_service_batches")
                    || l.starts_with("fg_server_"))
        })
        .collect();
    println!("\n/metrics (excerpt):");
    for line in interesting {
        println!("  {line}");
    }

    let trace = http_get(addr, "/trace");
    let events = forkgraph::trace::chrome::parse(&trace).expect("valid Chrome trace");
    println!("\n/trace: {} events (load it in chrome://tracing)", events.len());

    // --- Graceful shutdown drains connections and the service. ------------
    server.shutdown();
    println!("\nserver drained and shut down cleanly");
}

/// Minimal HTTP GET returning the response body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: fg\r\nConnection: close\r\n\r\n").expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string()
}
