//! `custom_kernel` — define your own fork-processing-pattern kernel *outside*
//! the ForkGraph workspace and serve it like a built-in.
//!
//! The kernel here computes **weighted k-hop reachability**: for a source
//! vertex, the minimum weighted distance to every vertex reachable over at
//! most `k` edges (`INF_DIST` beyond the hop budget). It demonstrates the
//! full open-kernel path:
//!
//! 1. implement [`FppKernel`] — plain sequential code, no atomics, exactly
//!    like the built-ins (the engine guarantees single-threaded access to a
//!    query's state);
//! 2. register a factory in the service's [`KernelRegistry`] that parses the
//!    `k` parameter, validates it, and erases the kernel;
//! 3. submit [`Query`]s by kernel *name* from concurrent clients — they are
//!    micro-batched, executed on the shared persistent worker pool, and
//!    cached, all by a service that has never heard of this kernel;
//! 4. check every answer against a simple serial oracle (k rounds of
//!    Bellman-Ford).
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use std::sync::Arc;
use std::time::Duration;

use forkgraph::core::kernel::FppKernel;
use forkgraph::core::operation::Priority;
use forkgraph::graph::{gen, AdjacencyView, CsrGraph, Dist, VertexId, INF_DIST};
use forkgraph::prelude::*;
use forkgraph::service::{InstantiatedKernel, ParamError};

/// Hop budget served by default; clients pick their own per query.
const DEFAULT_K: u64 = 4;
const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 12;
/// Distinct hot sources; round two re-queries them to show cache hits.
const HOT_SET: u32 = 6;

// ---------------------------------------------------------------------------
// 1. The kernel: weighted k-hop reachability.
// ---------------------------------------------------------------------------

/// Per-query state: `state[v * (k+1) + h]` is the best weighted distance to
/// `v` over paths of at most `h` edges. Entries only ever decrease
/// (min-relaxation on a finite lattice), so the fixpoint — and therefore the
/// result — is identical under serial, spawned, and pooled execution.
struct KHopReachability {
    k: u32,
}

impl KHopReachability {
    fn stride(&self) -> usize {
        self.k as usize + 1
    }

    /// Distances within the full hop budget, extracted from a final state.
    fn within_budget(&self, state: &[Dist], num_vertices: usize) -> Vec<Dist> {
        (0..num_vertices).map(|v| state[v * self.stride() + self.k as usize]).collect()
    }
}

impl FppKernel for KHopReachability {
    /// `(distance so far, hops used)` — a `Copy` payload, like the built-ins.
    type Value = (Dist, u32);
    type State = Vec<Dist>;

    fn name(&self) -> &'static str {
        "khop"
    }

    fn init_state(&self, graph: &CsrGraph) -> Self::State {
        vec![INF_DIST; graph.num_vertices() * self.stride()]
    }

    fn source_op(&self, _source: VertexId) -> (Self::Value, Priority) {
        ((0, 0), 0)
    }

    fn process(
        &self,
        graph: &AdjacencyView<'_>,
        state: &mut Self::State,
        vertex: VertexId,
        (dist, hops): Self::Value,
        emit: &mut dyn FnMut(VertexId, Self::Value, Priority),
    ) -> u64 {
        let stride = self.stride();
        let base = vertex as usize * stride;
        if dist >= state[base + hops as usize] {
            return 0; // dominated: vertex already reached within `hops` at ≤ dist
        }
        // Reaching within `hops` edges also reaches within any larger budget.
        for h in hops as usize..stride {
            if dist < state[base + h] {
                state[base + h] = dist;
            }
        }
        if hops == self.k {
            return 0; // hop budget exhausted: prune instead of expanding
        }
        let mut edges = 0u64;
        for (target, weight) in graph.out_edges(vertex) {
            edges += 1;
            let next = dist + weight as Dist;
            if next < state[target as usize * stride + hops as usize + 1] {
                // Priority = tentative distance: closer frontiers first,
                // the same Dijkstra-style functor the built-ins use.
                emit(target, (next, hops + 1), next);
            }
        }
        edges
    }

    /// K-hop probes touch a bounded neighbourhood, so batches need roughly
    /// twice the queries of a full traversal to justify the same crew.
    fn batch_weight(&self) -> f64 {
        0.5
    }
}

// ---------------------------------------------------------------------------
// 2. The serial oracle: k rounds of Bellman-Ford.
// ---------------------------------------------------------------------------

fn oracle(graph: &CsrGraph, source: VertexId, k: u32) -> Vec<Dist> {
    let n = graph.num_vertices();
    let mut best = vec![INF_DIST; n];
    best[source as usize] = 0;
    for _ in 0..k {
        let previous = best.clone();
        for v in 0..n as u32 {
            let d = previous[v as usize];
            if d == INF_DIST {
                continue;
            }
            for (t, w) in graph.out_edges(v) {
                let next = d + w as Dist;
                if next < best[t as usize] {
                    best[t as usize] = next;
                }
            }
        }
    }
    best
}

fn main() {
    let graph = gen::rmat(13, 8, 7).with_random_weights(8, 7);
    let partitioned =
        Arc::new(PartitionedGraph::build(&graph, PartitionConfig::llc_sized(128 * 1024)));
    println!(
        "graph: {} vertices, {} edges, {} partitions",
        graph.num_vertices(),
        graph.num_edges(),
        partitioned.num_partitions()
    );

    let service = ForkGraphService::start(
        Arc::clone(&partitioned),
        EngineConfig::default().with_threads(4),
        ServiceConfig {
            batch_window: Duration::from_millis(5),
            max_batch_size: 64,
            max_queue_depth: 256,
            cache_capacity: 256,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();

    // 3. Register the kernel. From here on, "khop" is a first-class query
    // type: batched, admission-controlled, pool-dispatched, cached.
    handle
        .register_kernel("khop", |params: &QueryParams| {
            params.ensure_known(&["k"])?;
            let k = params.u64_or("k", DEFAULT_K)?;
            if k == 0 || k > 64 {
                return Err(ParamError::new(format!("parameter \"k\" must be in 1..=64, got {k}")));
            }
            Ok(InstantiatedKernel::new(
                erase(KHopReachability { k: k as u32 }),
                QueryParams::new().with("k", k),
            ))
        })
        .expect("khop is not taken");
    println!("registered kernels: {:?}", handle.registry().names());

    // 4. Concurrent clients query by name; every answer is oracle-checked.
    // Two rounds: the first is a burst (shows micro-batch consolidation and
    // adaptive pool dispatch), the second re-queries the same hot set
    // (shows cache hits for a kernel the service never heard of at build
    // time).
    let graph_ref = &graph;
    let mut checked = 0usize;
    for round in 0..2 {
        checked += std::thread::scope(|scope| {
            let workers: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    let handle = handle.clone();
                    scope.spawn(move || {
                        // Burst-submit every ticket, then wait: concurrent
                        // same-key queries consolidate into large cohorts.
                        let queries: Vec<(VertexId, u64)> = (0..QUERIES_PER_CLIENT)
                            .map(|i| {
                                let source = ((client + i) as u32 * 131) % HOT_SET;
                                let k = DEFAULT_K + (client as u64 % 2);
                                (source, k)
                            })
                            .collect();
                        let tickets: Vec<_> = queries
                            .iter()
                            .map(|&(source, k)| {
                                handle
                                    .submit_query(
                                        Query::kernel("khop").source(source).param("k", k),
                                    )
                                    .expect("khop is registered")
                                    .typed::<Vec<Dist>>()
                            })
                            .collect();
                        for (&(source, k), ticket) in queries.iter().zip(tickets) {
                            let state = ticket.wait().expect("service answered");
                            let kernel = KHopReachability { k: k as u32 };
                            let served = kernel.within_budget(&state, graph_ref.num_vertices());
                            assert_eq!(
                                served,
                                oracle(graph_ref, source, k as u32),
                                "client {client} source {source} k {k}"
                            );
                        }
                        queries.len()
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).sum::<usize>()
        });
        let _ = round;
    }

    let m = service.metrics();
    let pool = service.pool_metrics();
    let records = service.batch_records();
    service.shutdown();

    println!("\n=== custom kernel served and oracle-checked ({checked} queries) ===");
    println!("batches dispatched   : {}", m.batches_dispatched);
    println!(
        "batch occupancy      : mean {:.2}, max {}",
        m.mean_batch_occupancy(),
        m.max_batch_occupancy
    );
    println!(
        "result cache         : {:.0}% hit rate ({} hits, {} misses)",
        m.cache_hit_rate() * 100.0,
        m.cache_hits,
        m.cache_misses
    );
    let parallel_batches = records.iter().filter(|r| r.workers > 1).count();
    println!(
        "adaptive sizing      : {} of {} recorded batches ran parallel (max {} workers)",
        parallel_batches,
        records.len(),
        m.max_batch_workers
    );
    if let Some(p) = pool {
        println!(
            "worker pool          : {} threads spawned, {} dispatches, {:.0}% mailbox reuse",
            p.threads_spawned,
            p.dispatches,
            p.mailbox_reuse_rate() * 100.0
        );
    }
    println!("\nall {checked} served results matched the serial k-hop oracle ✓");
}
