//! Approximate betweenness centrality (BC) with sampled sources, comparing the
//! ForkGraph engine against a Ligra-style baseline running the same batch of
//! SSSP queries with inter-query parallelism (t = 1).
//!
//! Run with: `cargo run --release --example betweenness`

use std::sync::Arc;

use forkgraph::apps::bc::BetweennessCentrality;
use forkgraph::baselines::{FppDriver, LigraEngine};
use forkgraph::prelude::*;

fn main() {
    // A scaled stand-in for the Wikipedia hyperlink graph.
    let graph = forkgraph::graph::datasets::WK.scaled(0.3).with_random_weights(12, 1);
    println!("graph: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    let partitioned = PartitionedGraph::build(&graph, PartitionConfig::llc_sized(256 * 1024));
    let app = BetweennessCentrality::new(24, 5);

    // ForkGraph.
    let fork = app.run_forkgraph(&partitioned, EngineConfig::default());
    println!(
        "ForkGraph : {:.2?}, {:>12} edges processed",
        fork.measurement.wall_time, fork.measurement.work.edges_processed
    );

    // Ligra-like baseline with inter-query parallelism (t = 1).
    let driver = FppDriver::new(LigraEngine::new(), Arc::new(graph.clone()));
    let base = app.run_baseline(&driver, ExecutionScheme::InterQuery, &graph);
    println!(
        "Ligra(t=1): {:.2?}, {:>12} edges processed",
        base.measurement.wall_time, base.measurement.work.edges_processed
    );

    // Both must agree on the centrality scores.
    let max_diff = fork
        .centrality
        .iter()
        .zip(base.centrality.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("max |centrality difference| = {max_diff:.2e}");

    // Report the top-5 most central vertices.
    let mut ranked: Vec<(usize, f64)> = fork.centrality.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-5 central vertices:");
    for (v, score) in ranked.into_iter().take(5) {
        println!("  vertex {v:>6}: {score:.1}");
    }
}
