//! `serve` — run the ForkGraph query service under synthetic client traffic.
//!
//! Builds an RMAT graph, partitions it into LLC-sized pieces, starts an
//! always-on [`ForkGraphService`], and drives it with a handful of closed-loop
//! client threads issuing a skewed mix of SSSP/BFS/PPR queries (a Zipf-ish hot
//! set, so the result cache has something to do). Prints the service metrics
//! snapshot at the end: batch occupancy is the consolidation win, cache hit
//! rate the memoization win.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use forkgraph::prelude::*;

const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 50;
/// Fraction of queries drawn from the small hot set (cacheable repeats).
const HOT_FRACTION: f64 = 0.5;
const HOT_SET: usize = 8;

fn main() {
    // A social-network-like graph, partitioned for a simulated 256 KiB LLC
    // (small so the demo graph splits into several partitions).
    let graph = forkgraph::graph::gen::rmat(13, 8, 42).with_random_weights(8, 42);
    let partitioned =
        Arc::new(PartitionedGraph::build(&graph, PartitionConfig::llc_sized(256 * 1024)));
    println!(
        "graph: {} vertices, {} edges, {} partitions",
        graph.num_vertices(),
        graph.num_edges(),
        partitioned.num_partitions()
    );

    // Up to 4 engine workers per batch; the batcher sizes each micro-batch's
    // crew adaptively and dispatches parallel runs onto one persistent
    // worker pool (spawned once, reused by every batch).
    let service = ForkGraphService::start(
        Arc::clone(&partitioned),
        EngineConfig::default().with_threads(4),
        ServiceConfig {
            batch_window: Duration::from_millis(2),
            max_batch_size: 64,
            max_queue_depth: 256,
            cache_capacity: 512,
            // Let concurrently-waiting SSSP/BFS/PPR cohorts share one engine
            // pass (`run_multi`) instead of sweeping the partitions once per
            // kernel.
            max_kernels_per_run: 4,
        },
    );

    let n = graph.num_vertices() as u32;
    let started = Instant::now();
    let answered: usize = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let handle = service.handle();
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x5EED + client as u64);
                    let mut answered = 0usize;
                    for _ in 0..QUERIES_PER_CLIENT {
                        // Synthetic arrival process: short random think time.
                        std::thread::sleep(Duration::from_micros(rng.gen_range(0u64..500)));
                        let source = if rng.gen_bool(HOT_FRACTION) {
                            rng.gen_range(0u32..HOT_SET as u32)
                        } else {
                            rng.gen_range(0u32..n)
                        };
                        // Mix the two submission APIs: the open builder
                        // (`Query::kernel(..)`) and the legacy enum shim —
                        // they resolve to the same registered kernels and
                        // batch/cache together.
                        let query = match rng.gen_range(0u32..3) {
                            0 => Query::kernel("sssp").source(source),
                            1 => QuerySpec::Bfs { source }.to_query(),
                            _ => Query::kernel("ppr").source(source).param("epsilon", 1e-5),
                        };
                        match handle.submit_query(query) {
                            Ok(ticket) => {
                                let result = ticket.wait().expect("service answered");
                                // Touch the result so the work is observable;
                                // the try_* accessors name the actual kernel
                                // if we ever mismatch.
                                match result.kernel_name() {
                                    "sssp" => {
                                        let d = result.try_sssp().expect("sssp result");
                                        assert_eq!(d[source as usize], 0);
                                    }
                                    "bfs" => {
                                        let l = result.try_bfs().expect("bfs result");
                                        assert_eq!(l[source as usize], 0);
                                    }
                                    "ppr" => {
                                        let p = result.try_ppr().expect("ppr result");
                                        assert!(p.total_mass() > 0.9);
                                    }
                                    other => panic!("unexpected kernel {other:?}"),
                                }
                                answered += 1;
                            }
                            Err(ServiceError::Saturated { queue_depth, capacity }) => {
                                // Closed-loop clients just retry after backoff;
                                // here we simply count the shed.
                                eprintln!(
                                    "client {client}: shed at depth {queue_depth}/{capacity}"
                                );
                            }
                            Err(e) => panic!("unexpected service error: {e}"),
                        }
                    }
                    answered
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    let elapsed = started.elapsed();

    let m = service.metrics();
    let pool = service.pool_metrics();
    let mixed_records = service.batch_records().iter().filter(|r| r.kernels_in_run >= 2).count();
    service.shutdown();

    println!("\n=== fg-service metrics after {answered} answered queries ===");
    println!(
        "wall time: {:.2?} ({:.0} q/s); {mixed_records} batch records with kernels_in_run >= 2",
        elapsed,
        answered as f64 / elapsed.as_secs_f64()
    );
    // The snapshots render themselves: `Display` on `ServiceSnapshot` /
    // `PoolSnapshot` is the one operational summary every tool shares.
    println!("{m}");
    if let Some(p) = pool {
        println!("{p}");
    }
}
