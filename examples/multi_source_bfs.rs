//! Multi-source BFS with cache simulation: runs the same FPP batch through a
//! baseline engine under inter-query parallelism and through ForkGraph, and
//! prints the simulated LLC miss counts side by side — the core claim of the
//! paper (Figure 10a) in miniature.
//!
//! Run with: `cargo run --release --example multi_source_bfs`

use std::sync::Arc;

use forkgraph::baselines::fpp::QueryKind;
use forkgraph::baselines::{FppDriver, GraphItEngine, LigraEngine};
use forkgraph::prelude::*;

fn main() {
    let graph = forkgraph::graph::datasets::LJ.scaled(0.25);
    let shared = Arc::new(graph.clone());
    println!("graph: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    // A small simulated LLC so the scaled graph does not fit.
    let llc = CacheConfig { capacity_bytes: 128 * 1024, line_bytes: 64, associativity: 16 };
    let sources: Vec<VertexId> =
        (0..24u32).map(|i| i * 131 % graph.num_vertices() as u32).collect();

    println!("{:<22} {:>14} {:>14} {:>10}", "system", "LLC loads", "LLC misses", "miss %");

    for (label, result) in [
        (
            "Ligra (t=1)",
            FppDriver::new(LigraEngine::new(), Arc::clone(&shared)).with_cache(llc).run(
                &QueryKind::Bfs,
                &sources,
                ExecutionScheme::InterQuery,
            ),
        ),
        (
            "GraphIt (t=1)",
            FppDriver::new(GraphItEngine::new(), Arc::clone(&shared)).with_cache(llc).run(
                &QueryKind::Bfs,
                &sources,
                ExecutionScheme::InterQuery,
            ),
        ),
    ] {
        let cache = result.measurement.cache.unwrap();
        println!(
            "{:<22} {:>14} {:>14} {:>9.1}%",
            label,
            cache.loads,
            cache.misses,
            cache.miss_ratio() * 100.0
        );
    }

    // ForkGraph over LLC-sized partitions with the same simulated cache.
    let partitioned =
        PartitionedGraph::build(&graph, PartitionConfig::llc_sized(llc.capacity_bytes));
    let engine = ForkGraphEngine::new(&partitioned, EngineConfig::default().with_cache(llc));
    let fork = engine.run_bfs(&sources);
    let cache = fork.measurement.cache.unwrap();
    println!(
        "{:<22} {:>14} {:>14} {:>9.1}%",
        "ForkGraph",
        cache.loads,
        cache.misses,
        cache.miss_ratio() * 100.0
    );
    println!(
        "({} partitions, {} partition visits)",
        partitioned.num_partitions(),
        fork.work().partition_visits
    );
}
