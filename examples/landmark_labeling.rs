//! Landmark labeling on a road network: build a distance-label index with a
//! batch of SSSPs (the LL workload of the paper) and answer point-to-point
//! distance queries with it.
//!
//! Run with: `cargo run --release --example landmark_labeling`

use forkgraph::apps::ll::LandmarkLabeling;
use forkgraph::prelude::*;

fn main() {
    // A scaled stand-in for the California road network (Table 2).
    let graph = forkgraph::graph::datasets::CA.generate_weighted(0.25);
    println!("road network: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    let partitioned = PartitionedGraph::build(&graph, PartitionConfig::llc_sized(128 * 1024));
    println!("partitions: {}", partitioned.num_partitions());

    // Build the index from 32 landmarks (the paper uses 16-1024).
    let app = LandmarkLabeling::new(32, 7);
    let result = app.run_forkgraph(&partitioned, EngineConfig::default());
    println!(
        "built {} labels in {:.2?} ({} edges processed)",
        result.index.num_labels(),
        result.measurement.wall_time,
        result.measurement.work.edges_processed
    );

    // Answer a few distance queries and compare against exact Dijkstra.
    let pairs = [(0u32, 500u32), (3, 999), (42, 4000), (100, 2500)];
    for (u, v) in pairs {
        let estimate = result.index.estimate(u, v % graph.num_vertices() as u32);
        let exact = dijkstra(&graph, u).dist[(v % graph.num_vertices() as u32) as usize];
        println!("d({u}, {v}) <= {estimate}   (exact {exact})");
        assert!(estimate >= exact, "landmark estimate must upper-bound the true distance");
    }
}
