//! Quickstart: partition a graph, run a batch of SSSP queries with ForkGraph,
//! and compare the work against a plain sequential baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use forkgraph::prelude::*;

fn main() {
    // 1. Build a synthetic social-network-like graph (a scaled stand-in for
    //    the LiveJournal graph of the paper) with random edge weights.
    let graph = forkgraph::graph::datasets::LJ.generate_weighted(0.2);
    println!(
        "graph: {} vertices, {} edges, {:.1} MiB",
        graph.num_vertices(),
        graph.num_edges(),
        graph.size_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 2. Partition it into LLC-sized partitions (here: a simulated 256 KiB LLC
    //    so the scaled graph still produces a few dozen partitions).
    let partitioned = PartitionedGraph::build(&graph, PartitionConfig::llc_sized(256 * 1024));
    println!(
        "partitions: {} (cut ratio {:.1}%)",
        partitioned.num_partitions(),
        partitioned.cut_ratio() * 100.0
    );

    // 3. Launch a fork-processing pattern: 32 independent SSSP queries.
    let sources: Vec<VertexId> = (0..32u32).map(|i| i * 97 % graph.num_vertices() as u32).collect();
    let engine = ForkGraphEngine::new(&partitioned, EngineConfig::default());
    let result = engine.run_sssp(&sources);
    println!(
        "ForkGraph: {} queries in {:.2?} — {} edges processed, {} partition visits, {} yields",
        sources.len(),
        result.measurement.wall_time,
        result.work().edges_processed,
        result.work().partition_visits,
        result.work().yields,
    );

    // 4. Sanity-check one query against the sequential oracle and report the
    //    work-efficiency ratio (Theorem A.3: within a constant factor).
    let oracle = dijkstra(&graph, sources[0]);
    assert_eq!(result.per_query[0], oracle.dist);
    let sequential_edges: u64 = sources.iter().map(|&s| dijkstra(&graph, s).edges_processed).sum();
    println!(
        "work ratio vs sequential Dijkstra: {:.1}x (paper reports 5.2-16.7x)",
        result.work().edges_processed as f64 / sequential_edges as f64
    );
}
