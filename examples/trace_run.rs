//! `trace_run` — end-to-end observability demo: traced service, Chrome
//! trace export, per-run profile, and the Prometheus exposition.
//!
//! Builds an RMAT graph, starts a *traced* [`ForkGraphService`]
//! ([`ForkGraphService::start_traced`]), pushes a mixed SSSP/BFS workload
//! through it, and then:
//!
//! 1. writes the recorded event stream as Chrome trace-event JSON to
//!    `trace.json` (load it in `chrome://tracing` or
//!    <https://ui.perfetto.dev>), validating that it parses first;
//! 2. prints the Prometheus-style text exposition
//!    ([`fg_trace::expose`] via [`TraceHandle::exposition`]);
//! 3. runs one profiled engine batch directly
//!    ([`EngineConfig::with_profile`]) and prints its
//!    [`RunProfile`] — phase wall times and work-shape histograms.
//!
//! ```text
//! cargo run --release --example trace_run
//! ```

use std::sync::Arc;
use std::time::Duration;

use forkgraph::prelude::*;
use forkgraph::service::TraceHandle;
use forkgraph::trace;

const QUERIES: usize = 48;

fn main() {
    let graph = forkgraph::graph::gen::rmat(12, 8, 7).with_random_weights(8, 7);
    let partitioned =
        Arc::new(PartitionedGraph::build(&graph, PartitionConfig::llc_sized(256 * 1024)));
    println!(
        "graph: {} vertices, {} edges, {} partitions",
        graph.num_vertices(),
        graph.num_edges(),
        partitioned.num_partitions()
    );

    // A traced service: every submit, batch formation, engine run (with its
    // partition visits, claims, steals, parks), and ticket resolution lands
    // in this sink's per-thread ring buffers.
    let sink = TraceSink::new();
    let service = ForkGraphService::start_traced(
        Arc::clone(&partitioned),
        EngineConfig::default().with_threads(4).with_executor(ExecutorMode::Pool),
        forkgraph::service::ServiceConfig {
            batch_window: Duration::from_millis(2),
            max_batch_size: 64,
            max_queue_depth: 256,
            // No result cache: every query reaches the engine so the trace
            // shows real batch/run spans for the whole workload.
            cache_capacity: 0,
            max_kernels_per_run: 4,
        },
        Arc::clone(&sink),
    );

    // A burst of mixed-kernel queries; SSSP and BFS cohorts that wait
    // together share one heterogeneous engine pass.
    let handle = service.handle();
    let n = graph.num_vertices() as u32;
    let tickets: Vec<Ticket> = (0..QUERIES)
        .map(|i| {
            let source = (i as u32 * 97) % n;
            let query = if i % 2 == 0 {
                Query::kernel("sssp").source(source)
            } else {
                Query::kernel("bfs").source(source)
            };
            handle.submit_query(query).expect("submit")
        })
        .collect();
    for ticket in tickets {
        ticket.wait().expect("service answered");
    }

    let trace_handle: TraceHandle = service.trace_handle().expect("service was started traced");

    // Export the event stream as Chrome trace-event JSON and self-validate:
    // the same parser the CI gate uses must accept what we wrote.
    let json = trace_handle.chrome_trace();
    let events = trace::chrome::parse(&json).expect("exported trace parses");
    std::fs::write("trace.json", &json).expect("write trace.json");
    let stats = trace_handle.sink().stats();
    println!(
        "\ntrace.json: {} chrome events from {} events on {} threads ({} dropped)",
        events.len(),
        stats.retained,
        stats.threads,
        stats.dropped
    );
    println!("load it in chrome://tracing or https://ui.perfetto.dev");

    println!("\n=== /metrics exposition ===");
    print!("{}", trace_handle.exposition());
    service.shutdown();

    // Per-run profiles come from the engine itself — no service, and no
    // sink needed: `with_profile` alone attaches a RunProfile to the result.
    let engine = ForkGraphEngine::new(&partitioned, EngineConfig::default().with_profile(true));
    let sources: Vec<u32> = (0..32u32).map(|i| (i * 131) % n).collect();
    let result = engine.run_sssp(&sources);
    let profile = result.profile.as_ref().expect("profile requested");
    println!("\n=== serial RunProfile ({} queries) ===", sources.len());
    println!("{profile}");
}
