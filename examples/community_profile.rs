//! Network community profile (NCP): launch a batch of personalized PageRank
//! queries from random seeds and sweep them for the best-conductance clusters,
//! reproducing the NCP workload of the paper at laptop scale.
//!
//! Run with: `cargo run --release --example community_profile`

use forkgraph::apps::ncp::NetworkCommunityProfile;
use forkgraph::prelude::*;
use forkgraph::seq::ppr::PprConfig;

fn main() {
    // A scaled stand-in for the Orkut social network.
    let graph = forkgraph::graph::datasets::OR.scaled(0.3);
    println!("social network: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    let partitioned = PartitionedGraph::build(&graph, PartitionConfig::llc_sized(256 * 1024));

    // Seed PPR at 0.5% of the vertices (scaled up from the paper's 0.01% so
    // the scaled graph still yields a meaningful profile).
    let app = NetworkCommunityProfile::new(0.005, 11)
        .with_ppr(PprConfig { epsilon: 1e-4, ..Default::default() });
    let result = app.run_forkgraph(&partitioned, app.engine_config());

    println!(
        "{} PPR seeds processed in {:.2?} ({} operations, {} partition visits)",
        result.seeds.len(),
        result.measurement.wall_time,
        result.measurement.work.operations_processed,
        result.measurement.work.partition_visits
    );
    println!("network community profile (best conductance per cluster size):");
    for point in &result.profile {
        println!("  size >= {:>6}: conductance {:.4}", point.size, point.conductance);
    }
    println!("best overall conductance: {:.4}", result.best_conductance());
}
